"""The attack-program genome: a typed DSL of probe primitives.

A genome is a short sequence of *genes* -- touch/stride sweeps, timed
probe sweeps, kernel-text flushes and reloads, branch training, and
yield-to-victim waits -- plus a decoder that turns the timed
measurements of one round into a channel observation.  Genes are plain
frozen dataclasses with small integer fields, so genomes serialise to
JSON, pickle across the campaign pool, and mutate by integer jitter.

Compilation targets :class:`repro.kernel.objects.ReplayableProgram`: the
genome dict rides in ``ctx.params`` and a module-level step function
interprets a flat micro-op plan, so every discovered attack is
replayable, snapshottable and model-checkable exactly like the
hand-written suite.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple, Type, Union

from ..hardware.isa import (
    Access,
    Branch,
    Compute,
    FlushLine,
    ProgramContext,
    ReadTime,
    Syscall,
)

#: Primitive families the mutation bandit arbitrates between.
FAMILIES = ("touch", "timed", "flush", "text", "branch", "wait")

DECODERS = ("argmax", "argmin", "bins")

#: Hard cap on genes per genome and micro-ops per compiled round.
MAX_OPS = 10
MAX_PLAN_OPS = 512

#: Inclusive bounds per integer gene field (shared by validation,
#: mutation jitter and the hypothesis strategies in the test suite).
FIELD_BOUNDS: Dict[str, Tuple[int, int]] = {
    "page": (0, 15),
    "line": (0, 15),
    "count": (1, 24),
    "stride_lines": (-8, 8),
    "pattern": (0, 255),
    "cycles": (64, 16384),
    "bin_width": (2, 128),
}


@dataclass(frozen=True)
class TouchSweep:
    """Untimed strided data accesses (the *prime* / trigger primitive)."""

    page: int = 0
    line: int = 0
    count: int = 8
    stride_lines: int = 1
    write: bool = False

    family = "touch"
    kind = "touch"


@dataclass(frozen=True)
class TimedSweep:
    """Strided data accesses bracketed by ``ReadTime`` (the *probe*)."""

    page: int = 0
    line: int = 0
    count: int = 1
    stride_lines: int = 1

    family = "timed"
    kind = "timed"


@dataclass(frozen=True)
class FlushText:
    """``clflush`` a run of (possibly cloned) kernel-text lines."""

    line: int = 0
    count: int = 4

    family = "flush"
    kind = "flush"


@dataclass(frozen=True)
class FlushData:
    """``clflush`` a run of the spy's own data lines (every level).

    The reset primitive for residue channels: clearing a candidate line
    from the whole hierarchy makes its next timed access report where
    the line got *re*-filled from (e.g. by a prefetch another domain
    trained).
    """

    page: int = 0
    line: int = 0
    count: int = 1
    stride_lines: int = 1

    family = "flush"
    kind = "flush-data"


@dataclass(frozen=True)
class TimedTextReload:
    """Timed reload of kernel-text lines (the *reload* of flush+reload)."""

    line: int = 0
    count: int = 4

    family = "text"
    kind = "text"


@dataclass(frozen=True)
class BranchTrain:
    """Untimed conditional branches following a taken-bit pattern."""

    pattern: int = 0b10101010
    count: int = 8

    family = "branch"
    kind = "branch-train"


@dataclass(frozen=True)
class TimedBranch:
    """Branches bracketed by ``ReadTime`` (mispredict-latency probe)."""

    pattern: int = 0b10101010
    count: int = 8

    family = "branch"
    kind = "branch-timed"


@dataclass(frozen=True)
class YieldToVictim:
    """Sleep through (at least) one victim slice via the sleep syscall."""

    cycles: int = 8192

    family = "wait"
    kind = "yield"


@dataclass(frozen=True)
class Delay:
    """Pure compute delay (phase alignment without a kernel entry)."""

    cycles: int = 256

    family = "wait"
    kind = "delay"


Gene = Union[
    TouchSweep,
    TimedSweep,
    FlushText,
    FlushData,
    TimedTextReload,
    BranchTrain,
    TimedBranch,
    YieldToVictim,
    Delay,
]

GENE_TYPES: Tuple[Type, ...] = (
    TouchSweep,
    TimedSweep,
    FlushText,
    FlushData,
    TimedTextReload,
    BranchTrain,
    TimedBranch,
    YieldToVictim,
    Delay,
)

_KIND_TO_TYPE: Dict[str, Type] = {cls.kind: cls for cls in GENE_TYPES}
_FAMILY_TO_TYPES: Dict[str, List[Type]] = {}
for _cls in GENE_TYPES:
    _FAMILY_TO_TYPES.setdefault(_cls.family, []).append(_cls)


@dataclass(frozen=True)
class Genome:
    """An attack program: probe genes plus a per-round decoder."""

    ops: Tuple[Gene, ...]
    decoder: str = "bins"
    bin_width: int = 16

    def to_dict(self) -> dict:
        return {
            "ops": [
                {"kind": gene.kind, **{
                    f.name: getattr(gene, f.name) for f in fields(gene)
                }}
                for gene in self.ops
            ],
            "decoder": self.decoder,
            "bin_width": self.bin_width,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Genome":
        ops = []
        for entry in data["ops"]:
            entry = dict(entry)
            kind = entry.pop("kind")
            gene_cls = _KIND_TO_TYPE.get(kind)
            if gene_cls is None:
                raise ValueError(f"unknown gene kind {kind!r}")
            ops.append(gene_cls(**entry))
        genome = cls(
            ops=tuple(ops),
            decoder=str(data.get("decoder", "bins")),
            bin_width=int(data.get("bin_width", 16)),
        )
        validate_genome(genome)
        return genome

    def families(self) -> Tuple[str, ...]:
        return tuple(gene.family for gene in self.ops)


class GenomeError(ValueError):
    """A genome violates the DSL's typing/bounds contract."""


def validate_genome(genome: Genome) -> None:
    """Raise :class:`GenomeError` unless ``genome`` is well-typed."""
    if not isinstance(genome.ops, tuple) or not genome.ops:
        raise GenomeError("genome needs at least one gene (as a tuple)")
    if len(genome.ops) > MAX_OPS:
        raise GenomeError(f"genome exceeds {MAX_OPS} genes")
    if genome.decoder not in DECODERS:
        raise GenomeError(f"unknown decoder {genome.decoder!r}")
    _check_bounds("bin_width", genome.bin_width)
    for gene in genome.ops:
        if not isinstance(gene, GENE_TYPES):
            raise GenomeError(f"not a gene: {gene!r}")
        for f in fields(gene):
            value = getattr(gene, f.name)
            if f.name == "write":
                if not isinstance(value, bool):
                    raise GenomeError(f"{gene.kind}.write must be bool")
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise GenomeError(f"{gene.kind}.{f.name} must be int")
            _check_bounds(f.name, value)


def _check_bounds(name: str, value: int) -> None:
    low, high = FIELD_BOUNDS[name]
    if not low <= value <= high:
        raise GenomeError(f"{name}={value} outside [{low}, {high}]")


def classify(genome: Genome) -> Tuple[str, ...]:
    """Attack-class labels a genome structurally qualifies for.

    ``cache-timing``: times data probes at all.
    ``prime+probe``: additionally primes data state before probing.
    ``flush+reload``: flushes kernel text and times its reload.
    ``branch``: trains or times the branch predictor.
    Labels describe mechanism, not success -- capacity is measured.
    """
    kinds = {gene.kind for gene in genome.ops}
    labels = []
    if "timed" in kinds:
        labels.append("cache-timing")
    if "timed" in kinds and "touch" in kinds:
        labels.append("prime+probe")
    if "flush" in kinds and "text" in kinds:
        labels.append("flush+reload")
    if "branch-train" in kinds or "branch-timed" in kinds:
        labels.append("branch")
    return tuple(labels)


# ----------------------------------------------------------------------
# Random generation / mutation / crossover (all rng-explicit: SC-2)
# ----------------------------------------------------------------------

def random_gene(rng, family: Optional[str] = None) -> Gene:
    """A random gene, optionally constrained to one primitive family."""
    choices = _FAMILY_TO_TYPES[family] if family else list(GENE_TYPES)
    gene_cls = rng.choice(choices)
    values = {}
    for f in fields(gene_cls):
        if f.name == "write":
            values[f.name] = bool(rng.getrandbits(1))
        else:
            low, high = FIELD_BOUNDS[f.name]
            values[f.name] = rng.randint(low, high)
    return gene_cls(**values)


def random_genome(rng, min_ops: int = 2, max_ops: int = 6) -> Genome:
    """A random well-typed genome of ``min_ops..max_ops`` genes."""
    n_ops = rng.randint(min_ops, min(max_ops, MAX_OPS))
    ops = tuple(random_gene(rng) for _ in range(n_ops))
    decoder = rng.choice(DECODERS)
    bin_width = rng.choice((4, 8, 16, 32, 64))
    return Genome(ops=ops, decoder=decoder, bin_width=bin_width)


def _jitter_gene(gene: Gene, rng) -> Gene:
    """Perturb one random field of ``gene`` within its bounds."""
    mutable = [f for f in fields(gene)]
    f = rng.choice(mutable)
    values = {g.name: getattr(gene, g.name) for g in fields(gene)}
    if f.name == "write":
        values[f.name] = not values[f.name]
    else:
        low, high = FIELD_BOUNDS[f.name]
        delta = rng.choice((-4, -2, -1, 1, 2, 4))
        values[f.name] = max(low, min(high, values[f.name] + delta))
    return type(gene)(**values)


def mutate(
    genome: Genome, rng, family: Optional[str] = None
) -> Tuple[Genome, str]:
    """One mutation step; returns ``(child, family_touched)``.

    ``family`` (usually the bandit's pick) biases structural mutations:
    inserts draw a gene from that family, and jitters prefer an existing
    gene of that family.  The returned family is what was actually
    touched, for bandit credit assignment.
    """
    ops = list(genome.ops)
    decoder, bin_width = genome.decoder, genome.bin_width
    moves = ["jitter", "insert", "decoder"]
    if len(ops) > 1:
        moves += ["delete", "swap"]
    move = rng.choice(moves)
    touched = family or "wait"

    if move == "insert" and len(ops) < MAX_OPS:
        gene = random_gene(rng, family)
        ops.insert(rng.randint(0, len(ops)), gene)
        touched = gene.family
    elif move == "delete" and len(ops) > 1:
        removed = ops.pop(rng.randrange(len(ops)))
        touched = removed.family
    elif move == "swap" and len(ops) > 1:
        i = rng.randrange(len(ops))
        j = rng.randrange(len(ops))
        ops[i], ops[j] = ops[j], ops[i]
        touched = ops[i].family
    elif move == "decoder":
        if rng.getrandbits(1):
            decoder = rng.choice(DECODERS)
        else:
            bin_width = rng.choice((4, 8, 16, 32, 64))
    else:  # jitter
        preferred = [
            i for i, gene in enumerate(ops) if gene.family == family
        ] if family else []
        index = rng.choice(preferred) if preferred else rng.randrange(len(ops))
        ops[index] = _jitter_gene(ops[index], rng)
        touched = ops[index].family
    child = Genome(ops=tuple(ops), decoder=decoder, bin_width=bin_width)
    validate_genome(child)
    return child, touched


def crossover(a: Genome, b: Genome, rng) -> Genome:
    """One-point crossover of the gene sequences; decoder from a parent."""
    cut_a = rng.randint(0, len(a.ops))
    cut_b = rng.randint(0, len(b.ops))
    ops = (a.ops[:cut_a] + b.ops[cut_b:])[:MAX_OPS]
    if not ops:
        ops = (a.ops[0],)
    parent = a if rng.getrandbits(1) else b
    child = Genome(
        ops=ops, decoder=parent.decoder, bin_width=parent.bin_width
    )
    validate_genome(child)
    return child


# ----------------------------------------------------------------------
# Compilation to a ReplayableProgram micro-op plan
# ----------------------------------------------------------------------

def compile_plan(genome_dict: dict, ctx: ProgramContext) -> List[tuple]:
    """Flatten a genome dict into per-round micro-ops for ``ctx``'s layout.

    Gene page/line parameters are taken modulo the thread's actual
    geometry, so any well-typed genome compiles on any machine.  Plans
    are truncated at :data:`MAX_PLAN_OPS` micro-ops per round.
    """
    lines_per_page = max(1, ctx.page_size // ctx.line_size)
    n_pages = max(1, ctx.data_size // ctx.page_size)
    total_lines = n_pages * lines_per_page
    text_lines = (
        max(1, ctx.shared_text_size // ctx.line_size)
        if ctx.shared_text_base is not None and ctx.shared_text_size
        else 0
    )
    plan: List[tuple] = []
    for entry in genome_dict["ops"]:
        kind = entry["kind"]
        if kind == "touch" or kind == "timed":
            start = (
                (entry["page"] % n_pages) * lines_per_page
                + entry["line"] % lines_per_page
            )
            stride = entry["stride_lines"]
            addrs = [
                ctx.data_base
                + ((start + i * stride) % total_lines) * ctx.line_size
                for i in range(entry["count"])
            ]
            if kind == "timed":
                plan.append(("t0",))
            write = bool(entry.get("write", False))
            for addr in addrs:
                plan.append(("acc", addr, write))
            if kind == "timed":
                plan.append(("t1",))
        elif kind == "flush-data":
            start = (
                (entry["page"] % n_pages) * lines_per_page
                + entry["line"] % lines_per_page
            )
            stride = entry["stride_lines"]
            for i in range(entry["count"]):
                line = (start + i * stride) % total_lines
                plan.append(("fl", ctx.data_base + line * ctx.line_size))
        elif kind == "flush" and text_lines:
            for i in range(entry["count"]):
                line = (entry["line"] + i) % text_lines
                plan.append(
                    ("fl", ctx.shared_text_base + line * ctx.line_size)
                )
        elif kind == "text" and text_lines:
            plan.append(("t0",))
            for i in range(entry["count"]):
                line = (entry["line"] + i) % text_lines
                plan.append(
                    ("acc", ctx.shared_text_base + line * ctx.line_size, False)
                )
            plan.append(("t1",))
        elif kind == "branch-train" or kind == "branch-timed":
            if kind == "branch-timed":
                plan.append(("t0",))
            for i in range(entry["count"]):
                plan.append(("br", bool(entry["pattern"] >> (i % 8) & 1)))
            if kind == "branch-timed":
                plan.append(("t1",))
        elif kind == "yield":
            plan.append(("sys", entry["cycles"]))
        elif kind == "delay":
            plan.append(("cmp", entry["cycles"]))
        if len(plan) >= MAX_PLAN_OPS:
            break
    return plan[:MAX_PLAN_OPS]


def decode_feature(decoder: str, bin_width: int, vec: List[int]):
    """Fold one round's timed-latency vector into a channel observation."""
    if not vec:
        return 0
    if decoder == "argmax":
        return max(range(len(vec)), key=vec.__getitem__)
    if decoder == "argmin":
        return min(range(len(vec)), key=vec.__getitem__)
    return tuple(latency // bin_width for latency in vec)


def genome_step(ctx: ProgramContext, index: int, observation):
    """``ReplayableProgram`` step function interpreting a compiled plan.

    All history lives in ``ctx.params`` (the sanctioned pattern for
    snapshot-safe programs): the lazily built plan, the running timestamp
    and latency vector, and the per-round decoded features appended to
    ``ctx.params["results"]``.
    """
    state = ctx.params.get("_synth_state")
    if state is None:
        state = {
            "plan": compile_plan(ctx.params["genome"], ctx),
            "t0": 0,
            "vec": [],
        }
        ctx.params["_synth_state"] = state
    plan = state["plan"]
    n_ops = len(plan)
    if n_ops == 0:
        return None
    rounds = int(ctx.params.get("rounds", 4))
    genome_dict = ctx.params["genome"]

    if index > 0:
        previous = plan[(index - 1) % n_ops]
        if previous[0] == "t0":
            state["t0"] = observation.value
        elif previous[0] == "t1":
            state["vec"].append(observation.value - state["t0"])
        if index % n_ops == 0:
            ctx.params["results"].append(decode_feature(
                genome_dict.get("decoder", "bins"),
                int(genome_dict.get("bin_width", 16)),
                state["vec"],
            ))
            state["vec"] = []

    if index >= rounds * n_ops:
        return None
    op = plan[index % n_ops]
    tag = op[0]
    if tag == "acc":
        return Access(op[1], write=op[2], value=index & 0xFF)
    if tag == "t0" or tag == "t1":
        return ReadTime()
    if tag == "fl":
        return FlushLine(op[1])
    if tag == "br":
        return Branch(taken=op[1])
    if tag == "sys":
        return Syscall("sleep", (op[1],))
    return Compute(op[1])

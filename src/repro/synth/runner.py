"""Run one evolved genome against one victim and quantify the channel.

This is the synth counterpart of the hand-written attack experiments
(``repro.attacks.primeprobe`` et al.) and follows their exact shape --
build machine + kernel + two domains per symbol, run, sweep the symbol
alphabet, return a :class:`ChannelResult` -- so evolved genomes are
measured by the same harness, the same estimator and the same campaign
machinery as the fixed suite.  The function signature matches the
campaign registry's runner contract, which is what lets winning genomes
register as first-class attacks.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Tuple, Union

from ..attacks.harness import ChannelResult, run_symbol_sweep
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.objects import ReplayableProgram
from ..kernel.timeprotect import TimeProtectionConfig
from .genome import (
    FlushData,
    Genome,
    TimedSweep,
    TouchSweep,
    YieldToVictim,
    classify,
    genome_step,
)
from .victims import DEFAULT_SYMBOLS, VICTIMS

_HI_SLICE = 3000
_LO_SLICE = 9000


def _tp_label(tp: TimeProtectionConfig) -> str:
    mechanisms = tp.enabled_mechanisms()
    return "TP:" + (",".join(mechanisms) if mechanisms else "none")


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    genome: Union[Genome, dict],
    victim: str = "set_hammer",
    symbols: Optional[Sequence[int]] = None,
    rounds_per_run: int = 4,
    sweep_rounds: int = 1,
    hi_slice: int = _HI_SLICE,
    lo_slice: int = _LO_SLICE,
    data_pages: Optional[int] = None,
    hi_data_pages: Optional[int] = None,
    victim_params: Optional[dict] = None,
    on_kernel: Optional[Callable[[Kernel], None]] = None,
) -> ChannelResult:
    """Measure the channel a genome opens against ``victim`` under ``tp``.

    ``genome`` may be a :class:`Genome` or its dict form (what campaign
    trial params carry).  Hi runs the victim transmitting each symbol;
    Lo runs the compiled genome; the genome's per-round decoded features
    are the channel observations.
    """
    genome_dict = genome.to_dict() if isinstance(genome, Genome) else dict(genome)
    if victim not in VICTIMS:
        raise KeyError(f"unknown victim {victim!r}; choices: {sorted(VICTIMS)}")
    if symbols is None:
        symbols = DEFAULT_SYMBOLS[victim]
    victim_step = VICTIMS[victim]

    def run_once(symbol: Hashable) -> Sequence[Hashable]:
        kernel, results = _build_system(
            tp, machine_factory, genome_dict, victim_step, symbol,
            rounds_per_run, hi_slice, lo_slice, data_pages, hi_data_pages,
            victim_params,
        )
        kernel.run(
            max_cycles=(rounds_per_run + 3) * (hi_slice + lo_slice) * 2
        )
        if on_kernel is not None:
            on_kernel(kernel)
        # The first round runs before the genome's waits align with the
        # domain schedule; drop it as warmup.
        return results[1:] if len(results) > 1 else results

    return run_symbol_sweep(
        name=f"synth[{victim}]",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=symbols,
        rounds=sweep_rounds,
        metadata={
            "victim": victim,
            "genome": genome_dict,
            "classes": list(classify(
                genome if isinstance(genome, Genome) else Genome.from_dict(genome_dict)
            )),
        },
    )


def _build_system(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    genome_dict: dict,
    victim_step,
    symbol: Hashable,
    rounds_per_run: int,
    hi_slice: int,
    lo_slice: int,
    data_pages: Optional[int],
    hi_data_pages: Optional[int],
    victim_params: Optional[dict],
):
    """Build one ready-to-run symbol system; shared by both engines.

    Returns ``(kernel, results)`` where ``results`` is the list the
    genome's decoder appends per-round observations to.  The scalar
    ``experiment`` runs the kernel immediately; ``batched_experiment``
    collects one of these per (genome, round, symbol) lane and steps
    them all through the lockstep engine.
    """
    machine = machine_factory()
    kernel = Kernel(machine, tp)
    geometry = machine.config.l1d_geometry
    pages = data_pages if data_pages is not None else geometry.ways + 2
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=hi_slice)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=lo_slice)
    # Endpoint 0 exists so victims may issue send/poll syscalls.
    kernel.create_endpoint("synth")
    kernel.create_thread(
        hi,
        ReplayableProgram.factory(victim_step),
        params={"symbol": symbol, **(victim_params or {})},
        data_pages=(
            hi_data_pages if hi_data_pages is not None else geometry.ways
        ),
    )
    results: List[Hashable] = []
    kernel.create_thread(
        lo,
        ReplayableProgram.factory(genome_step),
        params={
            "genome": genome_dict,
            "results": results,
            "rounds": rounds_per_run,
        },
        data_pages=pages,
    )
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    return kernel, results


def batched_experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    genomes: Sequence[Union[Genome, dict]],
    victim: str = "set_hammer",
    symbols: Optional[Sequence[int]] = None,
    rounds_per_run: int = 4,
    sweep_rounds: int = 1,
    hi_slice: int = _HI_SLICE,
    lo_slice: int = _LO_SLICE,
    data_pages: Optional[int] = None,
    hi_data_pages: Optional[int] = None,
    victim_params: Optional[dict] = None,
    on_kernel: Optional[Callable[[Kernel], None]] = None,
) -> List[Optional[ChannelResult]]:
    """Measure a whole generation of genomes as one lockstep batch.

    One lane per (genome, sweep round, symbol), all stepped together by
    :func:`repro.hardware.batch.run_lockstep`; per genome the samples
    are pooled in :func:`run_symbol_sweep` order (rounds outer, symbols
    inner), so each returned :class:`ChannelResult` is bit-identical to
    what :func:`experiment` computes for that genome.  A genome whose
    lanes produce no samples yields ``None`` in its slot (the scalar
    path raises instead; the env translates both into the same
    zero-fitness evaluation).  Raises
    :class:`~repro.hardware.batch.BatchUnsupported` before stepping if
    the workload leaves the batch envelope.
    """
    from ..hardware.batch import run_lockstep

    if victim not in VICTIMS:
        raise KeyError(f"unknown victim {victim!r}; choices: {sorted(VICTIMS)}")
    if symbols is None:
        symbols = DEFAULT_SYMBOLS[victim]
    victim_step = VICTIMS[victim]
    genome_dicts = [
        genome.to_dict() if isinstance(genome, Genome) else dict(genome)
        for genome in genomes
    ]
    lanes: List[Tuple[int, Hashable, Kernel, List[Hashable]]] = []
    for index, genome_dict in enumerate(genome_dicts):
        for _round in range(sweep_rounds):
            for symbol in symbols:
                kernel, results = _build_system(
                    tp, machine_factory, genome_dict, victim_step, symbol,
                    rounds_per_run, hi_slice, lo_slice, data_pages,
                    hi_data_pages, victim_params,
                )
                lanes.append((index, symbol, kernel, results))
    run_lockstep(
        [kernel for _i, _s, kernel, _r in lanes],
        max_cycles=(rounds_per_run + 3) * (hi_slice + lo_slice) * 2,
    )
    pooled: List[List[Tuple[Hashable, Hashable]]] = [[] for _ in genomes]
    for index, symbol, kernel, results in lanes:
        if on_kernel is not None:
            on_kernel(kernel)
        kept = results[1:] if len(results) > 1 else results
        pooled[index].extend((symbol, observation) for observation in kept)
    tp_label = _tp_label(tp)
    out: List[Optional[ChannelResult]] = []
    for genome_dict, samples in zip(genome_dicts, pooled):
        if not samples:
            out.append(None)
            continue
        out.append(
            ChannelResult(
                name=f"synth[{victim}]",
                tp_label=tp_label,
                samples=samples,
                metadata={
                    "victim": victim,
                    "genome": genome_dict,
                    "classes": list(classify(Genome.from_dict(genome_dict))),
                },
            )
        )
    return out


# ----------------------------------------------------------------------
# Canonical discovered genomes
# ----------------------------------------------------------------------
# Checked-in witnesses of what the search finds (see EXPERIMENTS.md E15
# for the seeds); the registry's default `synth` attack and the novelty
# tests use them so CI does not depend on re-running a full search.

#: Prime+probe-class genome: prime both L1 ways of every set, yield
#: through the victim's slice, then time one cross-page probe pair per
#: candidate set; the binned timing vector names the hammered set.
#: (``bins`` beats ``argmax`` here because an L1 miss that hits L2 costs
#: only ~8 extra cycles -- comparable to syscall-path cache pollution on
#: low sets -- so per-probe bins are robust where a single argmax isn't.)
PRIME_PROBE_GENOME = Genome(
    ops=(
        TouchSweep(page=0, line=0, count=16, stride_lines=1, write=False),
        YieldToVictim(cycles=10000),
        TimedSweep(page=0, line=1, count=2, stride_lines=8),
        TimedSweep(page=0, line=3, count=2, stride_lines=8),
        TimedSweep(page=0, line=5, count=2, stride_lines=8),
        TimedSweep(page=0, line=7, count=2, stride_lines=8),
    ),
    decoder="bins",
    bin_width=8,
)

#: Prefetcher-residue genome: reads the stride-prefetcher stream entry a
#: ``stream_strider`` victim leaves behind.  Per round: flush the
#: trigger and candidate lines from the whole hierarchy, warm the TLB
#: across all pages (page-table walks are L1d misses and would otherwise
#: pollute the stream entry between handoff and trigger), yield through
#: the victim's slice, then one trigger miss in the victim-trained
#: region -- the prefetcher still holds ``(last_addr, stride, conf=3)``
#: from the victim, so the trigger at ``a0`` issues prefetches at
#: ``2*a0 - last_addr`` into L2 -- and finally time the candidate lines:
#: the one that arrives from L2 instead of DRAM names the victim's
#: stride.  No hand-written attack in ``repro.attacks`` touches the
#: prefetcher element at all (see tests/synth/test_rediscovery.py for
#: the per-element counter evidence).
#:
#: Tuned for ``experiment(..., victim="stream_strider", data_pages=6,
#: hi_data_pages=8, victim_params=PREFETCH_RESIDUE_VICTIM_PARAMS)`` on
#: the ``tiny``/``unflushable`` presets, where Hi's streaming window
#: (pages 4-6) and all of Lo's pages share one 4 KiB prefetcher region.
PREFETCH_RESIDUE_GENOME = Genome(
    ops=(
        FlushData(page=3, line=3, count=2, stride_lines=1),
        FlushData(page=4, line=6, count=5, stride_lines=5),
        TouchSweep(page=0, line=7, count=6, stride_lines=8, write=False),
        YieldToVictim(cycles=10000),
        TouchSweep(page=0, line=0, count=1, stride_lines=1, write=False),
        TimedSweep(page=5, line=3, count=1, stride_lines=1),
        TimedSweep(page=4, line=6, count=1, stride_lines=1),
        TimedSweep(page=3, line=3, count=1, stride_lines=1),
        TimedSweep(page=3, line=4, count=1, stride_lines=1),
    ),
    decoder="bins",
    bin_width=32,
)

#: Victim/runner knobs the prefetcher-residue genome was tuned against.
PREFETCH_RESIDUE_VICTIM_PARAMS = {
    "base_page": 4,
    "window_pages": 3,
    "strides": (1, 2, 3, 4),
}

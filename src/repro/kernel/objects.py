"""Kernel objects: security domains, threads, kernel images.

A *security domain* (Sect. 2) is the unit the security policy treats as
opaque: one or more cooperating threads whose mutual interference is not
policed.  Time protection acts only at domain boundaries -- flushing and
padding happen on domain switches, never on intra-domain thread switches.

Per Sect. 4.2, the padding time is "not the job of the OS, but an
attribute of the switched-from security domain, controlled by the system
designer": hence ``Domain.pad_cycles``.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Set

from ..hardware.isa import Observation
from ..hardware.memory import Frame
from ..hardware.mmu import AddressSpace


class ThreadState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"  # waiting on an endpoint receive
    DONE = "done"
    FAULTED = "faulted"


class ReplayableProgram:
    """A thread program with explicit, copyable state.

    Thread programs are normally raw Python generators, which cannot be
    deep-copied or pickled -- fine for one-shot runs, fatal for the model
    checker's snapshot-based lockstep stepping (``Kernel.snapshot``).  A
    :class:`ReplayableProgram` speaks the same generator protocol the run
    loop uses (``next`` / ``send``) but keeps its entire state in two
    slots, so a snapshot of the kernel captures the program mid-flight
    and both copies replay identically.

    ``step_fn(ctx, index, observation) -> instruction | None`` is called
    with the 0-based instruction index and the observation delivered for
    the previous instruction (``None`` on the first call).  Returning
    ``None`` ends the program (the run loop sees ``StopIteration`` and
    marks the thread DONE).  ``step_fn`` must be a module-level function
    and must not close over mutable state: everything history-dependent
    belongs in ``index``/``observation``/``ctx.params``.
    """

    __slots__ = ("step_fn", "ctx", "index", "finished")

    def __init__(self, step_fn, ctx):
        self.step_fn = step_fn
        self.ctx = ctx
        self.index = 0
        self.finished = False

    @classmethod
    def factory(cls, step_fn):
        """A ``program_factory`` for ``Kernel.create_thread``."""
        return functools.partial(cls, step_fn)

    def __iter__(self):
        return self

    def __next__(self):
        return self.send(None)

    def send(self, observation):
        if self.finished:
            raise StopIteration
        instruction = self.step_fn(self.ctx, self.index, observation)
        if instruction is None:
            self.finished = True
            raise StopIteration
        self.index += 1
        return instruction


@dataclass
class KernelImage:
    """A kernel text image laid out in physical frames.

    With kernel clone enabled each domain has its own image in
    domain-coloured frames; otherwise all domains share the master image
    ("even read-only sharing of code is sufficient for creating a
    channel", Sect. 4.2).
    """

    name: str
    frames: List[Frame]
    page_size: int
    line_size: int

    @property
    def size_bytes(self) -> int:
        return len(self.frames) * self.page_size

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_size

    def line_paddr(self, line_index: int) -> int:
        """Physical address of the ``line_index``-th cache line of text."""
        offset = (line_index % self.n_lines) * self.line_size
        frame = self.frames[offset // self.page_size]
        return frame.base_paddr(self.page_size) + offset % self.page_size


@dataclass(slots=True)
class Tcb:
    """A thread control block."""

    name: str
    domain: "Domain"
    space: AddressSpace
    program: Generator
    pc: int
    core_id: int
    code_base: int = 0
    code_size: int = 0
    state: ThreadState = ThreadState.READY
    started: bool = False
    # Observation to deliver when the program next resumes (e.g. the value
    # returned by a syscall that blocked).
    pending_obs: Optional[Observation] = None
    blocked_on_endpoint: Optional[int] = None
    wake_time: Optional[int] = None
    steps_executed: int = 0

    def normalise_pc(self) -> None:
        """Wrap the synthetic pc back into the code region.

        Programs are generators, so the pc exists only to drive I-cache
        and branch-predictor behaviour; real code of this size would
        loop, which the wrap models.
        """
        if self.code_size > 0 and not (
            self.code_base <= self.pc < self.code_base + self.code_size
        ):
            self.pc = self.code_base + (self.pc - self.code_base) % self.code_size

    def runnable(self, now: int) -> bool:
        if self.state is not ThreadState.READY:
            return False
        return self.wake_time is None or now >= self.wake_time


@dataclass
class Domain:
    """A security domain: colours, threads, padding, owned IRQ lines."""

    name: str
    domain_id: int
    colours: Set[int]
    slice_cycles: int
    pad_cycles: int
    irq_lines: Set[int] = field(default_factory=set)
    kernel_image: Optional[KernelImage] = None
    threads: List[Tcb] = field(default_factory=list)
    # Round-robin position for intra-domain scheduling, per core.
    rr_position: dict = field(default_factory=dict)

    def threads_on_core(self, core_id: int) -> List[Tcb]:
        return [tcb for tcb in self.threads if tcb.core_id == core_id]

    def next_runnable(self, core_id: int, now: int) -> Optional[Tcb]:
        """Round-robin pick of the next runnable thread on ``core_id``."""
        candidates = self.threads_on_core(core_id)
        if not candidates:
            return None
        start = self.rr_position.get(core_id, 0) % len(candidates)
        for offset in range(len(candidates)):
            tcb = candidates[(start + offset) % len(candidates)]
            if tcb.runnable(now):
                self.rr_position[core_id] = (start + offset + 1) % len(candidates)
                return tcb
        return None

    def earliest_wake(self, core_id: int, now: int) -> Optional[int]:
        """Earliest future wake time among this core's waiting threads."""
        times = [
            tcb.wake_time
            for tcb in self.threads_on_core(core_id)
            if tcb.state is ThreadState.READY
            and tcb.wake_time is not None
            and tcb.wake_time > now
        ]
        return min(times) if times else None

    def all_done(self) -> bool:
        return all(
            tcb.state in (ThreadState.DONE, ThreadState.FAULTED)
            for tcb in self.threads
        )

"""Kernel trap handling: Case 2a of the proof sketch, executable.

"For Case 2a, the execution time depends on the state of the instruction
cache wrt. the kernel instructions executed, plus the data cache for any
data accessed." (Sect. 5.2)  Accordingly every syscall here *fetches its
handler's text lines through the I-side hierarchy from the calling
domain's kernel image* (the clone, when cloning is on) and touches a
fixed, deterministic prefix of the shared global kernel data.  Kernel
execution is attributed to the instrumentation context
``"<domain>/kernel"`` so the partitioning checker can apply the
kernel-shared-colour exemption precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hardware.cpu import Core
from ..hardware.isa import Syscall
from .ipc import EndpointTable
from .irq_policy import IrqPartitionPolicy
from .objects import Domain, Tcb, ThreadState
from .scheduler import DomainScheduler

# (text-line offset into the kernel image, lines fetched, data words touched)
_OP_COSTS = {
    "nop": (32, 8, 2),
    "yield": (40, 8, 2),
    "send": (48, 14, 4),
    "recv": (64, 14, 4),
    "poll": (80, 10, 3),
    "call": (96, 18, 5),
    "io_submit": (120, 12, 3),
    "sleep": (136, 6, 2),
}

_HANDLER_BASE_CYCLES = 25


class UnknownSyscall(Exception):
    pass


@dataclass
class SyscallOutcome:
    """What the run loop should do after a syscall."""

    retval: Optional[int]
    blocked: bool = False
    yielded: bool = False


class SyscallHandler:
    """Executes syscall semantics with deterministic kernel-path costs."""

    def __init__(
        self,
        endpoints: EndpointTable,
        irq_policy: IrqPartitionPolicy,
        scheduler: DomainScheduler,
        kernel_data_paddrs: List[int],
        instrumentation,
    ):
        self.endpoints = endpoints
        self.irq_policy = irq_policy
        self.scheduler = scheduler
        self.kernel_data_paddrs = kernel_data_paddrs
        self.instrumentation = instrumentation

    def handle(
        self, core: Core, domain: Domain, tcb: Tcb, syscall: Syscall
    ) -> SyscallOutcome:
        """Run the kernel path for ``syscall``; advances the core clock."""
        costs = _OP_COSTS.get(syscall.op)
        if costs is None:
            raise UnknownSyscall(f"unknown syscall {syscall.op!r}")
        self.instrumentation.set_context(
            f"{domain.name}/kernel", core.core_id, core.clock.now
        )
        self._charge_kernel_path(core, domain, *costs)
        outcome = self._dispatch(core, domain, tcb, syscall)
        return outcome

    # ------------------------------------------------------------------
    # Deterministic kernel-path cost
    # ------------------------------------------------------------------

    def _charge_kernel_path(
        self, core: Core, domain: Domain, line_offset: int, n_lines: int, n_data: int
    ) -> None:
        cycles = _HANDLER_BASE_CYCLES
        image = domain.kernel_image
        if image is not None:
            for line in range(n_lines):
                paddr = image.line_paddr(line_offset + line)
                cycles += core.cached_access(paddr, write=False, fetch=True)
        for word in range(min(n_data, len(self.kernel_data_paddrs))):
            cycles += core.cached_access(self.kernel_data_paddrs[word], write=False)
        core.clock.advance(cycles)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def _dispatch(
        self, core: Core, domain: Domain, tcb: Tcb, syscall: Syscall
    ) -> SyscallOutcome:
        op = syscall.op
        args = syscall.args
        now = core.clock.now
        state = self.scheduler.state(core.core_id)

        if op == "nop":
            return SyscallOutcome(retval=0)

        if op == "yield":
            return SyscallOutcome(retval=0, yielded=True)

        if op == "sleep":
            delay = args[0] if args else 0
            tcb.wake_time = now + max(0, delay)
            return SyscallOutcome(retval=0, yielded=True)

        if op == "send":
            endpoint = self.endpoints.get(args[0])
            self.endpoints.enqueue(
                endpoint,
                value=args[1] if len(args) > 1 else 0,
                sender_domain=domain.name,
                now=now,
                sender_slice_start=state.slice_start,
            )
            return SyscallOutcome(retval=0)

        if op == "call":
            endpoint = self.endpoints.get(args[0])
            message = self.endpoints.enqueue(
                endpoint,
                value=args[1] if len(args) > 1 else 0,
                sender_domain=domain.name,
                now=now,
                sender_slice_start=state.slice_start,
            )
            receiver = getattr(endpoint, "receiver_domain", None)
            if receiver is not None and receiver is not domain:
                # Synchronous handoff: the sender suspends and its slice
                # is truncated at the delivery point in favour of the
                # receiver's domain.  Padded IPC makes that point
                # deterministic (sender slice start + min-exec); unpadded,
                # it is the send time itself (the E1 channel).
                self.scheduler.force_switch(
                    core.core_id, receiver, at_time=message.visible_at
                )
                tcb.wake_time = message.visible_at
                return SyscallOutcome(retval=0, yielded=True)
            return SyscallOutcome(retval=0)

        if op == "recv":
            value = self.endpoints.try_receive(args[0], now)
            if value is not None:
                return SyscallOutcome(retval=value)
            tcb.state = ThreadState.BLOCKED
            tcb.blocked_on_endpoint = args[0]
            return SyscallOutcome(retval=None, blocked=True)

        if op == "poll":
            value = self.endpoints.try_receive(args[0], now)
            return SyscallOutcome(retval=value if value is not None else -1)

        if op == "io_submit":
            line, delay = args[0], args[1]
            payload = args[2] if len(args) > 2 else 0
            if not self.irq_policy.may_submit(domain, line):
                return SyscallOutcome(retval=-1)
            core.irq.schedule(line, fire_time=now + max(1, delay), payload=payload)
            return SyscallOutcome(retval=0)

        raise UnknownSyscall(f"unhandled syscall {op!r}")

"""Time-protection configuration: the mechanisms of Sect. 4.2, as knobs.

Each mechanism the paper's seL4 implementation provides is independently
switchable so experiments can ablate them one at a time and show that
*each* is necessary:

* ``cache_colouring``    -- partition the shared LLC by page colour
                            (including a reserved colour for the small
                            shared kernel region).
* ``kernel_clone``       -- per-domain kernel image in domain-coloured
                            memory (defeats Flush+Reload on kernel text).
* ``flush_on_switch``    -- reset all core-local flushable state on every
                            *domain* switch (not intra-domain switches).
* ``pad_switch``         -- pad the domain-switch latency to a constant:
                            the next domain starts no earlier than the
                            previous domain's slice end plus the previous
                            domain's padding time.
* ``partition_interrupts`` -- IRQ lines owned by domains; non-owned lines
                            masked while another domain runs.
* ``padded_ipc``         -- deterministic cross-domain IPC delivery (Cock
                            et al. [2014]): the switch to the receiver
                            happens only once the sender domain has
                            executed for a pre-determined minimum time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TimeProtectionConfig:
    """Which time-protection mechanisms the kernel applies."""

    cache_colouring: bool = True
    kernel_clone: bool = True
    flush_on_switch: bool = True
    pad_switch: bool = True
    partition_interrupts: bool = True
    padded_ipc: bool = False
    # Alternative LLC partitioning mechanism: Intel CAT-style way
    # allocation instead of (or in addition to) page colouring.  The
    # paper's requirement is only that shared state be *partitioned*
    # (Sect. 4.1); either mechanism satisfies it.
    way_partitioning: bool = False
    # None means "derive from the machine's switch-path WCET estimate"
    # (the paper leaves choosing the pad to a separate WCET analysis; the
    # kernel provides a conservative analytical bound as the default).
    default_pad_cycles: "int | None" = None
    default_ipc_min_cycles: int = 0
    # Instrumentation fidelity for runs under this configuration:
    # ``"full"`` keeps per-touch records (required by the proof layer),
    # ``"counting"`` keeps only aggregate per-element touch counts and
    # skips per-switch LLC fingerprints -- the campaign-sweep fast path.
    # Channel observables (values and latencies) are identical either
    # way; only the evidence recorded about a run differs.
    instrumentation: str = "full"

    def __post_init__(self) -> None:
        if self.instrumentation not in ("full", "counting"):
            raise ValueError(
                f"instrumentation must be 'full' or 'counting', "
                f"got {self.instrumentation!r}"
            )

    @classmethod
    def full(cls, pad_cycles: "int | None" = None, padded_ipc: bool = False,
             ipc_min_cycles: int = 0) -> "TimeProtectionConfig":
        """All mechanisms on (the paper's proposed configuration)."""
        return cls(
            default_pad_cycles=pad_cycles,
            padded_ipc=padded_ipc,
            default_ipc_min_cycles=ipc_min_cycles,
        )

    @classmethod
    def none(cls) -> "TimeProtectionConfig":
        """No time protection at all (a conventional kernel)."""
        return cls(
            cache_colouring=False,
            kernel_clone=False,
            flush_on_switch=False,
            pad_switch=False,
            partition_interrupts=False,
            padded_ipc=False,
        )

    def without(self, **flags: bool) -> "TimeProtectionConfig":
        """Copy with the named mechanisms disabled, e.g. ``without(pad_switch=False)``.

        Values must be the new flag values; typically ``False`` for
        ablations.
        """
        return replace(self, **flags)

    @classmethod
    def full_with_way_partitioning(cls) -> "TimeProtectionConfig":
        """All mechanisms on, with CAT-style ways replacing colouring."""
        return cls(cache_colouring=False, way_partitioning=True)

    def enabled_mechanisms(self) -> tuple:
        """Names of the active mechanisms (for reports)."""
        names = []
        for name in (
            "cache_colouring",
            "way_partitioning",
            "kernel_clone",
            "flush_on_switch",
            "pad_switch",
            "partition_interrupts",
            "padded_ipc",
        ):
            if getattr(self, name):
                names.append(name)
        return tuple(names)

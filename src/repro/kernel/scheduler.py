"""The static domain scheduler (seL4-style).

Each core runs a fixed, repeating schedule of (domain, time-slice)
entries.  The schedule is static policy set at configuration time; the
kernel only provides the mechanism (deterministic switch points).  Slices
are *not* work-conserving: a domain with nothing to run idles out its
slice, because donating leftover time to the next domain would itself be
a timing channel.

Synchronous cross-domain IPC (the downgrader scenario, Figure 1) can
*truncate* the current slice: ``force_switch_at`` schedules an early
switch to the receiver's domain.  With padded IPC the truncation point is
deterministic; without it, the truncation time reveals the sender's
execution time -- experiment E1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .objects import Domain


@dataclass
class CoreScheduleState:
    """Per-core scheduler bookkeeping."""

    entries: List[Tuple[Domain, int]]
    position: int = 0
    slice_start: int = 0
    slice_end: int = 0
    forced_next: Optional[Domain] = None
    forced_switch_at: Optional[int] = None

    @property
    def current(self) -> Domain:
        return self.entries[self.position][0]

    @property
    def current_slice_cycles(self) -> int:
        return self.entries[self.position][1]

    def effective_switch_time(self) -> int:
        """When the current slice actually ends (early IPC switch or timer)."""
        if self.forced_switch_at is not None:
            return min(self.forced_switch_at, self.slice_end)
        return self.slice_end


class DomainScheduler:
    """Static round-robin domain schedules, one per core."""

    def __init__(self):
        self._cores: Dict[int, CoreScheduleState] = {}

    def set_schedule(
        self, core_id: int, entries: List[Tuple[Domain, Optional[int]]]
    ) -> None:
        """Install the repeating (domain, slice) list for ``core_id``.

        A ``None`` slice uses the domain's own ``slice_cycles``.
        """
        if not entries:
            raise ValueError("schedule must contain at least one domain")
        resolved = [
            (domain, slice_cycles if slice_cycles is not None else domain.slice_cycles)
            for domain, slice_cycles in entries
        ]
        state = CoreScheduleState(entries=resolved)
        state.slice_start = 0
        state.slice_end = resolved[0][1]
        self._cores[core_id] = state

    def has_schedule(self, core_id: int) -> bool:
        return core_id in self._cores

    def state(self, core_id: int) -> CoreScheduleState:
        return self._cores[core_id]

    def current_domain(self, core_id: int) -> Domain:
        return self._cores[core_id].current

    def scheduled_cores(self) -> List[int]:
        return sorted(self._cores)

    def domains_on_core(self, core_id: int) -> List[Domain]:
        seen = []
        for domain, _slice in self._cores[core_id].entries:
            if domain not in seen:
                seen.append(domain)
        return seen

    # ------------------------------------------------------------------
    # Switch points
    # ------------------------------------------------------------------

    def force_switch(
        self, core_id: int, to_domain: Domain, at_time: int
    ) -> None:
        """Truncate the current slice: switch to ``to_domain`` at ``at_time``.

        Used by synchronous IPC ("call"): the sender's slice ends early in
        favour of the receiver's domain.
        """
        state = self._cores[core_id]
        state.forced_next = to_domain
        state.forced_switch_at = at_time

    def peek_next(self, core_id: int) -> Domain:
        """The domain that will run after the next switch on ``core_id``."""
        state = self._cores[core_id]
        if state.forced_next is not None:
            return state.forced_next
        return state.entries[(state.position + 1) % len(state.entries)][0]

    def advance(self, core_id: int, release_time: int) -> Tuple[Domain, Domain]:
        """Move to the next schedule entry; returns (from, to) domains.

        ``release_time`` is when the incoming domain actually starts
        executing (after flush and padding); the new slice runs from
        there.
        """
        state = self._cores[core_id]
        from_domain = state.current
        if state.forced_next is not None:
            to_domain = state.forced_next
            # Jump the rotor to the forced domain's next occurrence so the
            # static schedule resumes from there.
            for offset in range(1, len(state.entries) + 1):
                candidate = (state.position + offset) % len(state.entries)
                if state.entries[candidate][0] is to_domain:
                    state.position = candidate
                    break
            else:
                raise ValueError(
                    f"forced domain {to_domain.name!r} not in core {core_id} schedule"
                )
            state.forced_next = None
            state.forced_switch_at = None
        else:
            state.position = (state.position + 1) % len(state.entries)
            to_domain = state.current
        state.slice_start = release_time
        state.slice_end = release_time + state.current_slice_cycles
        return from_domain, to_domain

"""The domain-switch path: flush, deterministic kernel work, padding.

This is Case 2b of the paper's proof sketch (Sect. 5.2) made executable.
On every domain switch the kernel:

1. enters on the preemption timer (or an early IPC-forced switch),
2. runs the switched-from side of the switch code (fetched from the
   *from*-domain's kernel image),
3. flushes every core-local flushable state element -- whose latency
   depends on execution history (dirty lines), which is why step 5 exists,
4. runs the switched-to side (fetched from the *to*-domain's image) and
   sweeps the entire shared global kernel data region, deterministically
   re-normalising its cache state so that it is "independent of prior Hi
   activity",
5. pads: the next domain starts executing no earlier than the previous
   domain's slice end plus the previous domain's padding time
   (``Domain.pad_cycles``) -- by spinning on the hardware clock.

Every switch emits a :class:`SwitchRecord` carrying timestamps and
post-flush state fingerprints: the raw evidence from which the proof
obligations PO-3 (flush applied), PO-4 (constant-time switch) and PO-5
(padding sufficient) are discharged by timestamp comparison -- "reducing
this to a functional property as well" (Sect. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..hardware.cpu import Core
from ..hardware.machine import Machine
from .objects import Domain, KernelImage
from .timeprotect import TimeProtectionConfig

# Number of kernel-text lines the switch code occupies on each side.
SWITCH_CODE_LINES = 16


def estimate_pad_cycles(machine: Machine, kernel_data_lines: int) -> int:
    """A conservative WCET bound for the switch path, used as the pad.

    The paper (Sect. 4.2) requires the padding time to be "at least the
    worst-case latency of the flush, but also needs to account for any
    delay of the handling of the preemption-timer interrupt by other
    kernel entries".  This analytical bound sums:

    * the worst-case flush latency of every core-local flushable element
      (all lines dirty),
    * the switch code and kernel-data sweep with every access missing all
      the way to DRAM (plus a dirty write-back at each level),
    * a generous allowance for preemption overshoot (the interrupted
      instruction's worst-case latency plus trap handling),

    with a 50% margin.  Systems designers may override per domain.
    """
    config = machine.config
    worst_miss = (
        config.l1i_latency.hit_cycles
        + config.l1d_latency.hit_cycles
        + config.l2_latency.hit_cycles
        + config.llc_latency.hit_cycles
        + config.l1d_latency.writeback_cycles_per_line
        + config.l2_latency.writeback_cycles_per_line
        + 2 * config.interconnect_transfer_cycles
        + config.latency.dram_cycles
    )
    flush_wcet = 0
    for element in machine.flushable_elements_of_core(0):
        latency = getattr(element, "latency", None)
        geometry = getattr(element, "geometry", None)
        if latency is not None and geometry is not None and hasattr(geometry, "ways"):
            lines = geometry.sets * geometry.ways
            flush_wcet += (
                latency.flush_base_cycles + lines * latency.writeback_cycles_per_line
            )
        else:
            flush_wcet += getattr(element, "flush_latency_cycles", 16)
    work_wcet = (2 * SWITCH_CODE_LINES + kernel_data_lines) * worst_miss
    overshoot = 8 * worst_miss + config.latency.trap_entry_cycles + 200
    return int(1.5 * (flush_wcet + work_wcet + overshoot)) + 500


@dataclass
class SwitchRecord:
    """Evidence from one domain switch."""

    core_id: int
    from_domain: str
    to_domain: str
    scheduled_at: int  # slice end (or forced IPC switch point)
    entered_at: int  # when the kernel actually got control
    flush_cycles: int
    lines_written_back: int
    work_cycles: int
    finished_at: int  # flush+work complete
    pad_target: Optional[int]  # None when padding disabled
    released_at: int  # when the next domain starts executing
    overrun: bool  # finished_at > pad_target (padding insufficient)
    post_flush_fingerprints: Dict[str, Hashable] = field(default_factory=dict)
    reset_fingerprints: Dict[str, Hashable] = field(default_factory=dict)
    flushed_elements: Tuple[str, ...] = ()
    # LLC contents (resident tags) per page colour, captured at release:
    # the evidence for kernel-shared-state determinism (PO-7) and for the
    # per-switch unwinding condition.
    llc_colour_fingerprints: Dict[int, Tuple] = field(default_factory=dict)
    # LLC contents per way-partition owner (only populated when CAT-style
    # way quotas are configured): the Lo-visible projection under way
    # partitioning.
    llc_owner_fingerprints: Dict[str, Tuple] = field(default_factory=dict)

    @property
    def switch_latency(self) -> int:
        """Lo-visible switch duration: scheduled end to actual release."""
        return self.released_at - self.scheduled_at


class SwitchPath:
    """Executes domain switches on a machine under a TP configuration."""

    def __init__(
        self,
        machine: Machine,
        tp: TimeProtectionConfig,
        kernel_data_paddrs: List[int],
        record_fingerprints: bool = True,
    ):
        self.machine = machine
        self.tp = tp
        self.kernel_data_paddrs = kernel_data_paddrs
        self.record_fingerprints = record_fingerprints
        self.records: List[SwitchRecord] = []

    def llc_fingerprints_by_colour(self) -> Dict[int, Tuple]:
        """Resident LLC tags grouped by page colour (snapshot, no touches)."""
        llc = self.machine.llc
        page_size = self.machine.page_size
        geometry = llc.geometry
        # Colour arithmetic hoisted out of the per-set loop: this snapshot
        # runs on every domain switch over every LLC set.
        n_colours = geometry.n_colours(page_size)
        sets_per_colour = geometry.sets_per_colour(page_size)
        by_colour: Dict[int, List] = {}
        for set_index in range(geometry.sets):
            colour = set_index // sets_per_colour if n_colours > 1 else 0
            tags = llc.resident_tags(set_index)
            by_colour.setdefault(colour, []).append((set_index, tags))
        return {colour: tuple(entries) for colour, entries in by_colour.items()}

    def llc_fingerprints_by_owner(self) -> Dict[str, Tuple]:
        """Resident LLC tags grouped by way-partition owner."""
        llc = self.machine.llc
        if not llc.way_quota:
            return {}
        by_owner: Dict[str, List] = {}
        for set_index in range(llc.geometry.sets):
            for tag, owner in llc.resident_lines(set_index):
                by_owner.setdefault(owner, []).append((set_index, tag))
        return {
            owner: tuple(sorted(entries)) for owner, entries in by_owner.items()
        }

    def execute(
        self,
        core: Core,
        from_domain: Domain,
        to_domain: Domain,
        scheduled_at: int,
    ) -> SwitchRecord:
        """Run the full switch path on ``core``; returns the evidence record.

        The caller (kernel run loop) has already detected the preemption
        point; ``core.clock.now`` is the kernel entry time, which may
        exceed ``scheduled_at`` by the latency of the interrupted
        instruction and any kernel entry handling -- the overshoot the
        padding must also absorb (Sect. 4.2).
        """
        entered_at = core.clock.now
        work_cycles = 0

        # From-side switch code, fetched from the from-domain's image.
        work_cycles += self._run_switch_code(core, from_domain.kernel_image, side=0)

        # Flush all core-local flushable state.
        flush_cycles = 0
        lines_written_back = 0
        post_flush: Dict[str, Hashable] = {}
        reset_fps: Dict[str, Hashable] = {}
        flushed: List[str] = []
        if self.tp.flush_on_switch:
            for element in self.machine.flushable_elements_of_core(core.core_id):
                result = element.flush()
                flush_cycles += result.cycles
                lines_written_back += result.lines_written_back
                post_flush[element.name] = element.fingerprint()
                reset_fps[element.name] = element.reset_fingerprint()
                flushed.append(element.name)
        core.clock.advance(flush_cycles)

        # To-side switch code from the to-domain's image, then the shared
        # kernel data accesses: under time protection, a deterministic
        # full sweep that re-normalises the shared region's cache state
        # (the Case 2a property); without it, just the scheduler's
        # bookkeeping words, whose residency then carries history.
        work_cycles += self._run_switch_code(core, to_domain.kernel_image, side=1)
        if self.tp.flush_on_switch:
            work_cycles += self._sweep_kernel_data(core)
        else:
            work_cycles += self._touch_scheduler_data(core)

        finished_at = core.clock.now

        pad_target: Optional[int] = None
        overrun = False
        if self.tp.pad_switch:
            pad_target = scheduled_at + from_domain.pad_cycles
            overrun = finished_at > pad_target
            core.clock.advance_to(pad_target)
        released_at = core.clock.now

        record = SwitchRecord(
            core_id=core.core_id,
            from_domain=from_domain.name,
            to_domain=to_domain.name,
            scheduled_at=scheduled_at,
            entered_at=entered_at,
            flush_cycles=flush_cycles,
            lines_written_back=lines_written_back,
            work_cycles=work_cycles,
            finished_at=finished_at,
            pad_target=pad_target,
            released_at=released_at,
            overrun=overrun,
            post_flush_fingerprints=post_flush,
            reset_fingerprints=reset_fps,
            flushed_elements=tuple(flushed),
            llc_colour_fingerprints=(
                self.llc_fingerprints_by_colour()
                if self.record_fingerprints
                else {}
            ),
            llc_owner_fingerprints=(
                self.llc_fingerprints_by_owner()
                if self.record_fingerprints
                else {}
            ),
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Deterministic kernel work
    # ------------------------------------------------------------------

    def _run_switch_code(self, core: Core, image: Optional[KernelImage], side: int) -> int:
        """Fetch the switch code's text lines through the I-side hierarchy."""
        if image is None:
            return 0
        cycles = 0
        base = side * SWITCH_CODE_LINES
        for line in range(SWITCH_CODE_LINES):
            paddr = image.line_paddr(base + line)
            cycles += core.cached_access(paddr, write=False, fetch=True)
        core.clock.advance(cycles)
        return cycles

    def _touch_scheduler_data(self, core: Core) -> int:
        """The baseline kernel's switch-time data accesses (no sweep)."""
        cycles = 0
        for paddr in self.kernel_data_paddrs[:4]:
            cycles += core.cached_access(paddr, write=False)
        core.clock.advance(cycles)
        return cycles

    def _sweep_kernel_data(self, core: Core) -> int:
        """Touch every line of global kernel data (normalisation sweep).

        After this sweep the cache state of the shared kernel region is
        the same no matter what ran before -- the property Case 2a of the
        proof relies on.
        """
        cycles = 0
        for paddr in self.kernel_data_paddrs:
            cycles += core.cached_access(paddr, write=False)
        core.clock.advance(cycles)
        return cycles

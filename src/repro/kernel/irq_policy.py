"""Interrupt partitioning policy.

Sect. 4.2: "We prevent this [interrupt channel] by partitioning
interrupts (other than the preemption timer) between domains, and keep
all interrupts masked that are not associated with the presently-
executing domain."

The policy object owns the line -> domain assignment and reprograms each
core's interrupt controller mask on every domain switch.  With the policy
disabled, all lines stay unmasked for whoever happens to be running --
which lets a Trojan steer its I/O completion interrupt into the victim's
slice (experiment E6).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..hardware.interrupts import InterruptController, PREEMPTION_TIMER_IRQ
from .objects import Domain


class IrqPartitionPolicy:
    """Assigns IRQ lines to domains and enforces masking."""

    def __init__(self, enabled: bool, n_lines: int):
        self.enabled = enabled
        self.n_lines = n_lines
        self._owner: Dict[int, str] = {}

    def assign(self, line: int, domain: Domain) -> None:
        """Give ``line`` to ``domain`` (exclusive)."""
        if line == PREEMPTION_TIMER_IRQ:
            raise ValueError("the preemption timer line cannot be assigned")
        if not 0 <= line < self.n_lines:
            raise ValueError(f"IRQ line {line} out of range")
        current = self._owner.get(line)
        if current is not None and current != domain.name:
            raise ValueError(f"IRQ line {line} already owned by {current!r}")
        self._owner[line] = domain.name
        domain.irq_lines.add(line)

    def owner_of(self, line: int) -> Optional[str]:
        return self._owner.get(line)

    def may_submit(self, domain: Domain, line: int) -> bool:
        """May ``domain`` program a device completion on ``line``?

        With partitioning on, only the owner may; with it off, anything
        goes (the insecure baseline).
        """
        if not self.enabled:
            return True
        return self._owner.get(line) == domain.name

    def apply_masks(self, irq: InterruptController, running: Domain) -> None:
        """Program ``irq`` masks for the domain about to run.

        Partitioning on: unmask only the running domain's lines (plus the
        preemption timer).  Off: unmask everything.
        """
        if self.enabled:
            allowed: Set[int] = set(running.irq_lines) | {PREEMPTION_TIMER_IRQ}
            irq.set_mask_all_except(allowed)
        else:
            irq.set_mask_all_except(set(range(self.n_lines)))

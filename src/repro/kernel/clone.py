"""The kernel-clone mechanism: per-domain kernel images.

"As even read-only sharing of code is sufficient for creating a channel
[Gullasch et al. 2011; Yarom and Falkner 2014], we also colour the kernel
image.  This is achieved by a policy-free kernel clone mechanism, which
allows setting up a domain-private kernel image in coloured memory."
(Sect. 4.2)

With cloning enabled, :meth:`KernelCloneManager.image_for_domain`
allocates a fresh copy of the kernel text in the domain's own colours;
without it, every domain executes (and is mapped) the shared master
image, whose cache residency then carries cross-domain information.
"""

from __future__ import annotations

from typing import Dict, Optional

from .colour_alloc import ColourAwareAllocator
from .objects import Domain, KernelImage


class KernelCloneManager:
    """Builds the master kernel image and optional per-domain clones."""

    def __init__(
        self,
        allocator: ColourAwareAllocator,
        image_pages: int,
        line_size: int,
        clone_enabled: bool,
    ):
        self.allocator = allocator
        self.image_pages = image_pages
        self.line_size = line_size
        self.clone_enabled = clone_enabled
        page_size = allocator.memory.page_size
        self.master = KernelImage(
            name="kernel.master",
            frames=allocator.alloc_kernel_frames(image_pages),
            page_size=page_size,
            line_size=line_size,
        )
        self._clones: Dict[str, KernelImage] = {}

    def image_for_domain(self, domain: Domain) -> KernelImage:
        """The kernel image ``domain`` executes (clone or master)."""
        if not self.clone_enabled:
            return self.master
        clone = self._clones.get(domain.name)
        if clone is None:
            frames = self.allocator.alloc_for_domain(
                domain.name, self.image_pages
            )
            clone = KernelImage(
                name=f"kernel.clone.{domain.name}",
                frames=frames,
                page_size=self.allocator.memory.page_size,
                line_size=self.line_size,
            )
            self._clones[domain.name] = clone
        return clone

    def clones(self) -> Dict[str, KernelImage]:
        return dict(self._clones)

    def images_disjoint(self) -> bool:
        """True iff no two domains' images share a physical frame.

        Part of the kernel-image partitioning invariant: with cloning on,
        clones must be pairwise disjoint *and* disjoint from the master.
        """
        seen = {frame.number for frame in self.master.frames}
        for clone in self._clones.values():
            frames = {frame.number for frame in clone.frames}
            if frames & seen:
                return False
            seen |= frames
        return True

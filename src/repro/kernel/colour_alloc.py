"""The colour-aware physical frame allocator.

Partitioning the shared last-level cache "is possible without extra
hardware support by using page colouring" (Sect. 4.1): by handing each
security domain physical frames of disjoint colours, the OS confines each
domain to a disjoint subset of LLC sets.

One colour is reserved for the kernel's small shared region (master image
and global kernel data): user frames never come from it, so user-mode
execution can never touch those LLC sets, and the kernel re-normalises
them deterministically on every domain switch (Sect. 5.2, Case 2a).

With colouring disabled the allocator degenerates to first-fit over all
colours -- domains then overlap arbitrarily in the LLC, which is exactly
the condition the E3 experiment exploits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..hardware.memory import Frame, PhysicalMemory


class ColourExhausted(Exception):
    """No unassigned colours remain for a new domain."""


class ColourAwareAllocator:
    """Assigns disjoint colour sets to domains and allocates frames."""

    def __init__(self, memory: PhysicalMemory, colouring_enabled: bool):
        self.memory = memory
        self.colouring_enabled = colouring_enabled
        self.n_colours = memory.n_colours
        self.kernel_colours: Set[int] = set()
        self._assigned: Dict[str, Set[int]] = {}
        if colouring_enabled and self.n_colours >= 2:
            self.kernel_colours = {0}

    # ------------------------------------------------------------------
    # Colour assignment
    # ------------------------------------------------------------------

    def available_colours(self) -> List[int]:
        """Colours not yet reserved or assigned, in ascending order."""
        used = set(self.kernel_colours)
        for colours in self._assigned.values():
            used |= colours
        return [c for c in range(self.n_colours) if c not in used]

    def assign_domain_colours(
        self, domain_name: str, n_colours: Optional[int] = None
    ) -> Set[int]:
        """Give ``domain_name`` a disjoint share of the remaining colours.

        With colouring disabled -- or on hardware whose LLC offers fewer
        than two colours, where partitioning is physically impossible --
        every domain receives *all* colours (no partitioning; the proof
        obligations then flag the overlap).  With it enabled, the domain
        gets ``n_colours`` (default: an equal share of what remains, at
        least one).
        """
        if not self.colouring_enabled or self.n_colours < 2:
            colours = set(range(self.n_colours))
            self._assigned[domain_name] = colours
            return colours
        free = self.available_colours()
        if not free:
            raise ColourExhausted(
                f"no colours left for domain {domain_name!r} "
                f"({self.n_colours} total, kernel reserves {self.kernel_colours})"
            )
        if n_colours is None:
            n_colours = max(1, len(free) // 4)
        if n_colours > len(free):
            raise ColourExhausted(
                f"domain {domain_name!r} wants {n_colours} colours, "
                f"only {len(free)} remain"
            )
        colours = set(free[:n_colours])
        self._assigned[domain_name] = colours
        return colours

    def colours_of(self, domain_name: str) -> Set[int]:
        return set(self._assigned.get(domain_name, set()))

    def assignments(self) -> Dict[str, Set[int]]:
        """Copy of the current domain -> colours map (plus the kernel's)."""
        result = {name: set(colours) for name, colours in self._assigned.items()}
        result["@kernel"] = set(self.kernel_colours)
        return result

    def verify_disjoint(self) -> bool:
        """True iff all domain colour sets (and the kernel's) are disjoint.

        This is the static half of the partitioning invariant (PO-2); the
        dynamic half -- that touches stay inside the assigned colours --
        is checked from instrumentation by ``repro.core.invariants``.
        """
        if not self.colouring_enabled or self.n_colours < 2:
            return len(self._assigned) <= 1
        seen: Set[int] = set(self.kernel_colours)
        for colours in self._assigned.values():
            if colours & seen:
                return False
            seen |= colours
        return True

    # ------------------------------------------------------------------
    # Frame allocation
    # ------------------------------------------------------------------

    def alloc_for_domain(self, domain_name: str, count: int) -> List[Frame]:
        """Allocate ``count`` frames from the domain's colours."""
        colours = self._colour_filter(domain_name)
        return self.memory.alloc_frames(count, colours)

    def alloc_frame_for_domain(self, domain_name: str) -> Frame:
        return self.memory.alloc_frame(self._colour_filter(domain_name))

    def alloc_kernel_frames(self, count: int) -> List[Frame]:
        """Frames for the shared kernel region (reserved colour)."""
        colours = self.kernel_colours if self.colouring_enabled else None
        return self.memory.alloc_frames(count, colours or None)

    def _colour_filter(self, domain_name: str) -> Optional[Set[int]]:
        if not self.colouring_enabled or self.n_colours < 2:
            return None
        colours = self._assigned.get(domain_name)
        if not colours:
            raise KeyError(f"domain {domain_name!r} has no assigned colours")
        return colours

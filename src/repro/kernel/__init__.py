"""The seL4-like microkernel model with time protection.

Implements the mechanisms of Sect. 4.2 of the paper (following Ge et al.
[2019]): cache colouring with a colour-aware allocator, the kernel-clone
mechanism, flush-on-domain-switch with latency padding, interrupt
partitioning, and padded synchronous IPC delivery (Cock et al. [2014]).
"""

from .clone import KernelCloneManager
from .colour_alloc import ColourAwareAllocator, ColourExhausted
from .ipc import Endpoint, EndpointTable, Message
from .irq_policy import IrqPartitionPolicy
from .kernel import (
    CODE_BASE,
    DATA_BASE,
    IrqDeliveryRecord,
    Kernel,
    KTEXT_BASE,
    ObservationRecord,
)
from .objects import Domain, KernelImage, Tcb, ThreadState
from .scheduler import CoreScheduleState, DomainScheduler
from .switch import SwitchPath, SwitchRecord, SWITCH_CODE_LINES
from .syscalls import SyscallHandler, SyscallOutcome, UnknownSyscall
from .timeprotect import TimeProtectionConfig

__all__ = [
    "CODE_BASE",
    "ColourAwareAllocator",
    "ColourExhausted",
    "CoreScheduleState",
    "DATA_BASE",
    "Domain",
    "DomainScheduler",
    "Endpoint",
    "EndpointTable",
    "IrqDeliveryRecord",
    "IrqPartitionPolicy",
    "Kernel",
    "KernelCloneManager",
    "KernelImage",
    "KTEXT_BASE",
    "Message",
    "ObservationRecord",
    "SwitchPath",
    "SwitchRecord",
    "SWITCH_CODE_LINES",
    "SyscallHandler",
    "SyscallOutcome",
    "Tcb",
    "ThreadState",
    "TimeProtectionConfig",
    "UnknownSyscall",
]

"""The microkernel model: boot, domain/thread management, the run loop.

This ties the mechanisms together into an seL4-like kernel with time
protection (Ge et al. [2019], as summarised in Sect. 4.2 of the paper):

* boot reserves the kernel's shared colour, builds the master kernel
  image and the global kernel data region;
* domains get disjoint colours, a cloned kernel image, a time slice, a
  padding time and (optionally) owned IRQ lines;
* threads are user programs (generators over the abstract ISA) in
  coloured address spaces, with the domain's kernel text also mapped
  read-only (the "shared text" surface that Flush+Reload attacks);
* the run loop interleaves cores in global-time order, executing user
  instructions, syscalls, interrupt deliveries and padded domain switches,
  and records everything the proof layer needs: per-domain observation
  traces, switch records, interrupt delivery records and state touches.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hardware.cpu import Core, TrapKind
from ..hardware.isa import Observation, ProgramContext
from ..hardware.machine import Machine
from ..hardware.mmu import AddressSpaceManager
from .colour_alloc import ColourAwareAllocator
from .clone import KernelCloneManager
from .ipc import Endpoint, EndpointTable
from .irq_policy import IrqPartitionPolicy
from .objects import Domain, ReplayableProgram, Tcb, ThreadState
from .scheduler import CoreScheduleState, DomainScheduler
from .switch import SwitchPath, SwitchRecord, estimate_pad_cycles
from .syscalls import SyscallHandler, SyscallOutcome
from .timeprotect import TimeProtectionConfig

CODE_BASE = 0x0001_0000
DATA_BASE = 0x0100_0000
KTEXT_BASE = 0x0F00_0000

_TIMER_TICK_CYCLES = 30
_IRQ_HANDLER_LINES = 10
_IRQ_HANDLER_LINE_OFFSET = 160
_IRQ_HANDLER_BASE_CYCLES = 30


@dataclass(slots=True)
class IrqDeliveryRecord:
    """Evidence of one delivered device interrupt."""

    core_id: int
    line: int
    fire_time: int
    delivered_at: int
    running_domain: str
    owner_domain: Optional[str]
    handler_cycles: int


@dataclass(slots=True)
class ObservationRecord:
    """One program-visible observation (the Lo trace unit)."""

    thread: str
    value: Optional[int]
    latency: int


class Kernel:
    """The kernel model, bootable on any :class:`Machine`."""

    # Distinct kernel-text lines used by handlers (switch code, syscall
    # table, IRQ handlers); the image must be at least this big so
    # different handlers live on different cache lines.
    KERNEL_TEXT_LINES = 192

    def __init__(
        self,
        machine: Machine,
        tp: Optional[TimeProtectionConfig] = None,
        kernel_image_pages: Optional[int] = None,
        kernel_data_pages: int = 2,
        record_observations: bool = True,
    ):
        self.machine = machine
        self.tp = tp if tp is not None else TimeProtectionConfig.full()
        self.record_observations = record_observations
        # Counting instrumentation must be installed before any kernel
        # subsystem (SwitchPath, SyscallHandler) captures the machine's
        # instrumentation reference.
        counting = self.tp.instrumentation == "counting"
        if counting:
            machine.use_counting_instrumentation()
        line_size = machine.config.llc_geometry.line_size
        if kernel_image_pages is None:
            lines_per_page = max(1, machine.page_size // line_size)
            kernel_image_pages = -(-self.KERNEL_TEXT_LINES // lines_per_page)
        self.allocator = ColourAwareAllocator(
            machine.memory, self.tp.cache_colouring
        )
        self.clone_manager = KernelCloneManager(
            self.allocator,
            image_pages=kernel_image_pages,
            line_size=line_size,
            clone_enabled=self.tp.kernel_clone,
        )
        data_frames = self.allocator.alloc_kernel_frames(kernel_data_pages)
        page_size = machine.page_size
        self.kernel_data_paddrs: List[int] = [
            frame.base_paddr(page_size) + offset
            for frame in data_frames
            for offset in range(0, page_size, line_size)
        ]
        self.kernel_data_frames = data_frames
        self.endpoints = EndpointTable(
            padded_ipc=self.tp.padded_ipc,
            default_min_cycles=self.tp.default_ipc_min_cycles,
        )
        self.irq_policy = IrqPartitionPolicy(
            enabled=self.tp.partition_interrupts,
            n_lines=machine.config.irq_lines,
        )
        self.scheduler = DomainScheduler()
        # Per-switch LLC fingerprints exist only as proof/audit evidence;
        # counting-mode runs skip capturing them (a large per-switch cost).
        self.switch_path = SwitchPath(
            machine,
            self.tp,
            self.kernel_data_paddrs,
            record_fingerprints=not counting,
        )
        self.syscalls = SyscallHandler(
            endpoints=self.endpoints,
            irq_policy=self.irq_policy,
            scheduler=self.scheduler,
            kernel_data_paddrs=self.kernel_data_paddrs,
            instrumentation=machine.instrumentation,
        )
        self.spaces = AddressSpaceManager(machine.memory)
        self.pad_wcet_estimate = estimate_pad_cycles(
            machine, kernel_data_lines=len(self.kernel_data_paddrs)
        )
        # CAT-style way allocation: reserve a slice of the associativity
        # for the kernel's shared accesses, hand the rest to domains.
        self._way_quotas: Dict[str, int] = {}
        if self.tp.way_partitioning:
            llc_ways = machine.config.llc_geometry.ways
            self._way_quotas["@kernel"] = max(1, llc_ways // 8)
            machine.llc.set_way_quotas(self._way_quotas)
        self.domains: Dict[str, Domain] = {}
        self.observations: Dict[str, List[ObservationRecord]] = {}
        self.irq_deliveries: List[IrqDeliveryRecord] = []
        self._current_tcb: Dict[int, Optional[Tcb]] = {}
        self._next_domain_id = 1
        self._thread_counter = 0
        # Thread-list snapshot for the per-step all-finished check,
        # invalidated by ``_thread_counter`` whenever a thread is created.
        self._threads_snapshot: Tuple[Tcb, ...] = ()
        self._threads_version = -1
        # The all-finished scan only needs to re-run after some thread
        # transitions to DONE/FAULTED (no other event can make it true);
        # the run loop consults this flag instead of scanning every step.
        self._finish_check_needed = True
        self.total_steps = 0
        # Per-step latency dependency footprints (the paper's "unspecified
        # deterministic function" argument lists), captured when
        # ``capture_footprints`` is enabled.  Entries are
        # (case, context, ((element, index, kind), ...)) with case one of
        # "1" (user step), "2a" (trap), "2b" (domain switch).
        self.capture_footprints = False
        self.step_footprints: List[Tuple[str, str, Tuple]] = []
        # Lightweight sibling of ``capture_footprints``: records only the
        # (case, context) pairs of the Sect. 5.2 case split, without the
        # per-touch footprint tuples.  The model checker's case-trace
        # comparison needs exactly this and nothing more, so MC systems
        # enable ``capture_cases`` instead of paying for full footprints.
        self.capture_cases = False
        self.step_cases: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Configuration surface
    # ------------------------------------------------------------------

    def create_domain(
        self,
        name: str,
        n_colours: Optional[int] = None,
        slice_cycles: int = 3000,
        pad_cycles: Optional[int] = None,
        irq_lines: Tuple[int, ...] = (),
        llc_ways: Optional[int] = None,
    ) -> Domain:
        """Create a security domain with its colour share and kernel image.

        Under way partitioning, ``llc_ways`` (default: a quarter of what
        remains after the kernel's reservation) becomes the domain's
        CAT-style way quota.
        """
        if name in self.domains:
            raise ValueError(f"domain {name!r} already exists")
        colours = self.allocator.assign_domain_colours(name, n_colours)
        if self.tp.way_partitioning:
            total_ways = self.machine.config.llc_geometry.ways
            remaining = total_ways - sum(self._way_quotas.values())
            quota = llc_ways if llc_ways is not None else max(1, remaining // 4)
            if quota > remaining:
                raise ValueError(
                    f"domain {name!r} wants {quota} LLC ways, only "
                    f"{remaining} remain"
                )
            self._way_quotas[name] = quota
            self.machine.llc.set_way_quotas(self._way_quotas)
        domain = Domain(
            name=name,
            domain_id=self._next_domain_id,
            colours=colours,
            slice_cycles=slice_cycles,
            pad_cycles=self._resolve_pad_cycles(pad_cycles),
        )
        self._next_domain_id += 1
        domain.kernel_image = self.clone_manager.image_for_domain(domain)
        for line in irq_lines:
            self.irq_policy.assign(line, domain)
        self.domains[name] = domain
        self.observations[name] = []
        return domain

    def _resolve_pad_cycles(self, pad_cycles: Optional[int]) -> int:
        """Explicit value, else the config's, else the WCET estimate."""
        if pad_cycles is not None:
            return pad_cycles
        if self.tp.default_pad_cycles is not None:
            return self.tp.default_pad_cycles
        return self.pad_wcet_estimate

    def create_thread(
        self,
        domain: Domain,
        program_factory,
        core_id: int = 0,
        data_pages: int = 4,
        code_pages: int = 1,
        params: Optional[dict] = None,
        name: Optional[str] = None,
    ) -> Tcb:
        """Create a thread running ``program_factory(ctx)`` in ``domain``.

        The thread gets a coloured address space with a code region, a
        private data buffer, and the domain's kernel text mapped
        read-only at ``KTEXT_BASE``.
        """
        page_size = self.machine.page_size
        colours = domain.colours if self.tp.cache_colouring else None
        space = self.spaces.create(colours=colours)
        for page_index, frame in enumerate(
            self.allocator.alloc_for_domain(domain.name, code_pages)
        ):
            space.map(CODE_BASE + page_index * page_size, frame, writable=False)
        data_frames = self.allocator.alloc_for_domain(domain.name, data_pages)
        for page_index, frame in enumerate(data_frames):
            space.map(DATA_BASE + page_index * page_size, frame, writable=True)
        image = domain.kernel_image
        for page_index, frame in enumerate(image.frames):
            space.map(KTEXT_BASE + page_index * page_size, frame, writable=False)
        context = ProgramContext(
            data_base=DATA_BASE,
            data_size=data_pages * page_size,
            code_base=CODE_BASE,
            page_size=page_size,
            line_size=self.machine.config.llc_geometry.line_size,
            shared_text_base=KTEXT_BASE,
            shared_text_size=image.size_bytes,
            page_colours=tuple(frame.colour for frame in data_frames),
            params=dict(params or {}),
        )
        self._thread_counter += 1
        tcb = Tcb(
            name=name or f"{domain.name}.t{self._thread_counter}",
            domain=domain,
            space=space,
            program=program_factory(context),
            pc=CODE_BASE,
            core_id=core_id,
            code_base=CODE_BASE,
            code_size=code_pages * page_size,
        )
        domain.threads.append(tcb)
        return tcb

    def create_endpoint(
        self,
        name: str,
        min_exec_cycles: Optional[int] = None,
        receiver_domain: Optional[Domain] = None,
    ) -> Endpoint:
        return self.endpoints.create(
            name, min_exec_cycles=min_exec_cycles, receiver_domain=receiver_domain
        )

    def set_schedule(
        self, core_id: int, entries: List[Tuple[Domain, Optional[int]]]
    ) -> None:
        """Install the static domain schedule for one core."""
        self.scheduler.set_schedule(core_id, entries)
        self._current_tcb[core_id] = None
        first = self.scheduler.current_domain(core_id)
        self.irq_policy.apply_masks(self.machine.cores[core_id].irq, first)

    # ------------------------------------------------------------------
    # Derived accessors
    # ------------------------------------------------------------------

    @property
    def switch_records(self) -> List[SwitchRecord]:
        return self.switch_path.records

    def observation_trace(self, domain_name: str) -> List[Tuple[str, Optional[int], int]]:
        """The full observation trace of a domain, as comparable tuples."""
        return [
            (record.thread, record.value, record.latency)
            for record in self.observations[domain_name]
        ]

    def all_threads(self) -> List[Tcb]:
        return [tcb for domain in self.domains.values() for tcb in domain.threads]

    def current_thread(self, core_id: int) -> Optional[Tcb]:
        """The thread ``core_id`` last dispatched (scheduling state)."""
        return self._current_tcb.get(core_id)

    # ------------------------------------------------------------------
    # Snapshot / restore (model-checker lockstep stepping)
    # ------------------------------------------------------------------

    def snapshot(self) -> "Kernel":
        """A deep, independent copy of the entire system, machine included.

        The model checker (``repro.mc``) snapshots a kernel at every
        branching point and steps the copies independently; nothing is
        shared between the original and the copy.  Thread programs must
        carry explicit state for this to work: raw generators cannot be
        deep-copied, so model-checked systems build their threads from
        :class:`repro.kernel.objects.ReplayableProgram`.
        """
        try:
            return copy.deepcopy(self)
        except TypeError as error:
            raise TypeError(
                "kernel state is not snapshotable; thread programs must "
                "carry explicit state (build them from "
                "repro.kernel.objects.ReplayableProgram, not raw "
                f"generators): {error}"
            ) from None

    def clone_for_mc(self) -> "Kernel":
        """A hand-rolled deep copy of the whole system, machine included.

        Behaviourally identical to :meth:`snapshot` but much faster: the
        object graph is walked explicitly, sharing everything immutable
        after build (address spaces, kernel images, IRQ ownership, the
        clone manager, write-once switch/observation records) and copying
        only the mutable residue.  Raises ``TypeError`` for configurations
        the fast walk does not cover (SMT machines, counting
        instrumentation, non-ReplayableProgram threads) -- callers fall
        back to :meth:`snapshot`.
        """
        machine = self.machine.clone_for_mc()
        other = Kernel.__new__(Kernel)
        other.machine = machine
        other.tp = self.tp
        other.record_observations = self.record_observations
        # Allocator: rebind to the cloned memory; colour assignments are
        # static after build but the dict itself can in principle grow.
        allocator = ColourAwareAllocator.__new__(ColourAwareAllocator)
        allocator.memory = machine.memory
        allocator.colouring_enabled = self.allocator.colouring_enabled
        allocator.n_colours = self.allocator.n_colours
        allocator.kernel_colours = set(self.allocator.kernel_colours)
        allocator._assigned = {
            name: set(colours)
            for name, colours in self.allocator._assigned.items()
        }
        other.allocator = allocator
        other.clone_manager = self.clone_manager  # static after build
        other.kernel_data_paddrs = self.kernel_data_paddrs
        other.kernel_data_frames = self.kernel_data_frames
        other.irq_policy = self.irq_policy  # static owner map
        # Domains and threads, with name-keyed maps (names are unique
        # and stable) so every cross-reference (scheduler entries,
        # endpoint receivers, current tcbs) lands on the clone of the
        # object it pointed at.
        domain_map: Dict[str, Domain] = {}
        tcb_map: Dict[str, Tcb] = {}
        other.domains = {}
        for name, domain in self.domains.items():
            dclone = Domain(
                name=domain.name,
                domain_id=domain.domain_id,
                colours=set(domain.colours),
                slice_cycles=domain.slice_cycles,
                pad_cycles=domain.pad_cycles,
                irq_lines=set(domain.irq_lines),
                kernel_image=domain.kernel_image,
            )
            dclone.rr_position = dict(domain.rr_position)
            domain_map[domain.name] = dclone
            other.domains[name] = dclone
            for tcb in domain.threads:
                program = tcb.program
                if type(program) is ReplayableProgram:
                    pclone = ReplayableProgram(
                        program.step_fn, copy.deepcopy(program.ctx)
                    )
                    pclone.index = program.index
                    pclone.finished = program.finished
                else:
                    raise TypeError(
                        "clone_for_mc needs ReplayableProgram threads "
                        f"(got {type(program).__name__})"
                    )
                tclone = Tcb(
                    name=tcb.name,
                    domain=dclone,
                    space=tcb.space,
                    program=pclone,
                    pc=tcb.pc,
                    core_id=tcb.core_id,
                    code_base=tcb.code_base,
                    code_size=tcb.code_size,
                    state=tcb.state,
                    started=tcb.started,
                    pending_obs=tcb.pending_obs,
                    blocked_on_endpoint=tcb.blocked_on_endpoint,
                    wake_time=tcb.wake_time,
                    steps_executed=tcb.steps_executed,
                )
                tcb_map[tcb.name] = tclone
                dclone.threads.append(tclone)
        # Endpoints: fresh table and Endpoint shells; Message objects are
        # write-once, so queues share entries but not the deque.
        endpoints = EndpointTable.__new__(EndpointTable)
        endpoints.padded_ipc = self.endpoints.padded_ipc
        endpoints.default_min_cycles = self.endpoints.default_min_cycles
        endpoints._next_id = self.endpoints._next_id
        endpoints.n_endpoints = self.endpoints.n_endpoints
        endpoints._endpoints = {}
        for eid, endpoint in self.endpoints._endpoints.items():
            receiver = endpoint.receiver_domain
            endpoints._endpoints[eid] = Endpoint(
                endpoint_id=endpoint.endpoint_id,
                name=endpoint.name,
                min_exec_cycles=endpoint.min_exec_cycles,
                queue=type(endpoint.queue)(endpoint.queue),
                receiver_domain=(
                    domain_map[receiver.name] if receiver is not None else None
                ),
            )
        other.endpoints = endpoints
        # Scheduler: rebuild per-core state with mapped domains.
        scheduler = DomainScheduler()
        for core_id, state in self.scheduler._cores.items():
            sclone = CoreScheduleState(
                entries=[
                    (domain_map[domain.name], slice_cycles)
                    for domain, slice_cycles in state.entries
                ]
            )
            sclone.position = state.position
            sclone.slice_start = state.slice_start
            sclone.slice_end = state.slice_end
            forced = state.forced_next
            sclone.forced_next = (
                domain_map[forced.name] if forced is not None else None
            )
            sclone.forced_switch_at = state.forced_switch_at
            scheduler._cores[core_id] = sclone
        other.scheduler = scheduler
        # Switch path: SwitchRecord objects are write-once evidence, so
        # the clone shares the records while owning its own list.
        switch_path = SwitchPath.__new__(SwitchPath)
        switch_path.machine = machine
        switch_path.tp = self.switch_path.tp
        switch_path.kernel_data_paddrs = self.switch_path.kernel_data_paddrs
        switch_path.record_fingerprints = self.switch_path.record_fingerprints
        switch_path.records = list(self.switch_path.records)
        other.switch_path = switch_path
        other.syscalls = SyscallHandler(
            endpoints=endpoints,
            irq_policy=other.irq_policy,
            scheduler=scheduler,
            kernel_data_paddrs=other.kernel_data_paddrs,
            instrumentation=machine.instrumentation,
        )
        # Address spaces only mutate at build time (map/unmap); during
        # exploration they are read-only and safe to share.
        other.spaces = self.spaces
        other.pad_wcet_estimate = self.pad_wcet_estimate
        other._way_quotas = self._way_quotas
        other.observations = {
            name: list(records) for name, records in self.observations.items()
        }
        other.irq_deliveries = list(self.irq_deliveries)
        other._current_tcb = {
            core_id: (tcb_map[tcb.name] if tcb is not None else None)
            for core_id, tcb in self._current_tcb.items()
        }
        other._next_domain_id = self._next_domain_id
        other._thread_counter = self._thread_counter
        other._threads_snapshot = ()
        other._threads_version = -1  # force recompute on the clone
        other._finish_check_needed = self._finish_check_needed
        other.total_steps = self.total_steps
        other.capture_footprints = self.capture_footprints
        other.step_footprints = list(self.step_footprints)
        other.capture_cases = self.capture_cases
        other.step_cases = list(self.step_cases)
        fp_cache = getattr(self, "_mc_fp_cache", None)
        if fp_cache is not None:
            other._mc_fp_cache = dict(fp_cache)
        return other

    def step(self, core_id: int = 0, max_cycles: int = 1_000_000_000) -> None:
        """Execute exactly one scheduler step on ``core_id``.

        The single-transition hook the model checker drives: one user
        instruction, syscall, interrupt delivery, idle advance or domain
        switch -- whatever the run loop would do next on that core.
        """
        self._step_core(self.machine.cores[core_id], max_cycles)

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: int, max_steps: int = 50_000_000) -> None:
        """Run all scheduled cores in global time order until ``max_cycles``."""
        if self.machine.engine == "batch":
            # Route through the vectorized batch engine as a batch of
            # one; bit-identical to the scalar loop below (enforced by
            # the differential golden suite).
            from ..hardware.batch import run_lockstep

            run_lockstep([self], max_cycles, max_steps=max_steps)
            return
        cores = [
            self.machine.cores[core_id]
            for core_id in self.scheduler.scheduled_cores()
        ]
        if not cores:
            raise RuntimeError("no core has a schedule; call set_schedule first")
        steps = 0
        self._finish_check_needed = True
        if len(cores) == 1:
            # Single scheduled core (the common case): the min-clock
            # candidate selection degenerates to one comparison per step.
            core = cores[0]
            clock = core.clock
            while steps < max_steps and clock.now < max_cycles:
                if self._finish_check_needed:
                    if self._all_threads_finished():
                        break
                    self._finish_check_needed = False
                self._step_core(core, max_cycles)
                steps += 1
        else:
            while steps < max_steps:
                # Earliest-clock core still below the horizon (ties keep
                # the lowest core id, matching list order).
                core = None
                best = max_cycles
                for candidate in cores:
                    t = candidate.clock.now
                    if t < best:
                        best = t
                        core = candidate
                if core is None:
                    break
                if self._finish_check_needed:
                    if self._all_threads_finished():
                        break
                    self._finish_check_needed = False
                self._step_core(core, max_cycles)
                steps += 1
        self.total_steps += steps

    def _all_threads_finished(self) -> bool:
        if self._threads_version != self._thread_counter:
            self._threads_snapshot = tuple(self.all_threads())
            self._threads_version = self._thread_counter
        threads = self._threads_snapshot
        if not threads:
            return False
        done = ThreadState.DONE
        faulted = ThreadState.FAULTED
        for tcb in threads:
            state = tcb.state
            if state is not done and state is not faulted:
                return False
        return True

    def _step_core(self, core: Core, max_cycles: int) -> None:
        core_id = core.core_id
        state = self.scheduler.state(core_id)
        now = core.clock.now
        # Inline state.effective_switch_time() / state.current: this runs
        # once per simulated step.
        forced = state.forced_switch_at
        slice_end = state.slice_end
        switch_at = slice_end if forced is None or forced >= slice_end else forced
        if now >= switch_at:
            self._do_switch(core, switch_at)
            return
        domain = state.entries[state.position][0]
        pending = core.irq.deliverable(now)
        if pending is not None:
            self._handle_irq(core, domain, pending)
            return
        if self.endpoints.n_endpoints:
            self._unblock_receivers()
        tcb = self._pick_thread(core, domain, now)
        if tcb is None:
            self._idle(core, domain, now, switch_at)
            return
        self._execute_step(core, domain, tcb)

    # -- thread selection ------------------------------------------------

    def _pick_thread(self, core: Core, domain: Domain, now: int) -> Optional[Tcb]:
        current = self._current_tcb.get(core.core_id)
        if current is not None and current.domain is domain:
            # Inlined current.runnable(now); this test runs every step.
            if current.state is ThreadState.READY:
                wake = current.wake_time
                if wake is None or now >= wake:
                    return current
        tcb = domain.next_runnable(core.core_id, now)
        self._current_tcb[core.core_id] = tcb
        return tcb

    def _idle(self, core: Core, domain: Domain, now: int, switch_at: int) -> None:
        """Nothing runnable: advance to the next relevant event.

        The slice is *not* donated -- idling to the slice end is what
        keeps the schedule's switch points history-independent.
        """
        targets = [switch_at]
        wake = domain.earliest_wake(core.core_id, now)
        if wake is not None:
            targets.append(wake)
        irq_time = core.irq.next_unmasked_fire_time()
        if irq_time is not None and irq_time > now:
            targets.append(irq_time)
        for tcb in domain.threads_on_core(core.core_id):
            if tcb.state is ThreadState.BLOCKED and tcb.blocked_on_endpoint:
                visible = self.endpoints.get(
                    tcb.blocked_on_endpoint
                ).next_visibility_time()
                if visible is not None and visible > now:
                    targets.append(visible)
        target = min(t for t in targets if t > now) if any(
            t > now for t in targets
        ) else switch_at
        core.clock.advance_to(min(target, switch_at))
        if core.clock.now <= now:
            # Ensure forward progress even on degenerate schedules.
            core.clock.advance(1)

    # -- program execution -----------------------------------------------

    def _execute_step(self, core: Core, domain: Domain, tcb: Tcb) -> None:
        instrumentation = self.machine.instrumentation
        instrumentation.set_context(domain.name, core.core_id, core.clock.now)
        if self.capture_footprints:
            instrumentation.track_footprint = True
            instrumentation.reset_footprint()
        case = self._execute_step_inner(core, domain, tcb)
        if case is not None:
            if self.capture_footprints:
                self.step_footprints.append(
                    (case, domain.name, tuple(instrumentation.footprint))
                )
            if self.capture_cases:
                self.step_cases.append((case, domain.name))

    def _execute_step_inner(
        self, core: Core, domain: Domain, tcb: Tcb
    ) -> Optional[str]:
        delivered = tcb.pending_obs if tcb.pending_obs is not None else Observation()
        tcb.pending_obs = None
        try:
            if not tcb.started:
                instruction = next(tcb.program)
                tcb.started = True
            else:
                instruction = tcb.program.send(delivered)
        except StopIteration:
            tcb.state = ThreadState.DONE
            self._finish_check_needed = True
            self._current_tcb[core.core_id] = None
            core.clock.advance(1)
            return None
        # Inlined tcb.normalise_pc(): wrap the synthetic pc back into the
        # code region without a per-step method call.
        code_size = tcb.code_size
        if code_size > 0:
            rel = tcb.pc - tcb.code_base
            if rel < 0 or rel >= code_size:
                tcb.pc = tcb.code_base + rel % code_size
        result = core.execute_user(tcb.space, tcb.pc, instruction)
        tcb.pc = result.new_pc
        tcb.steps_executed += 1
        if result.trap is None:
            value = result.value
            latency = result.latency
            tcb.pending_obs = Observation(value, latency)
            # _record() inlined: this is the once-per-user-step case.
            if self.record_observations:
                self.observations[domain.name].append(
                    ObservationRecord(tcb.name, value, latency)
                )
            return "1"
        if result.trap.kind is TrapKind.HALT:
            tcb.state = ThreadState.DONE
            self._finish_check_needed = True
            self._current_tcb[core.core_id] = None
            return None
        if result.trap.kind is TrapKind.FAULT:
            tcb.state = ThreadState.FAULTED
            self._finish_check_needed = True
            self._current_tcb[core.core_id] = None
            return "2a"
        # Syscall.
        before = core.clock.now
        outcome = self.syscalls.handle(core, domain, tcb, result.trap.syscall)
        kernel_latency = (core.clock.now - before) + result.latency
        if outcome.blocked:
            self._current_tcb[core.core_id] = None
            return "2a"
        tcb.pending_obs = Observation(outcome.retval, kernel_latency)
        self._record(domain, tcb, outcome.retval, kernel_latency)
        if outcome.yielded:
            self._current_tcb[core.core_id] = None
        return "2a"

    def _record(
        self, domain: Domain, tcb: Tcb, value: Optional[int], latency: int
    ) -> None:
        if self.record_observations:
            self.observations[domain.name].append(
                ObservationRecord(tcb.name, value, latency)
            )

    # -- IPC wakeups -------------------------------------------------------

    def _unblock_receivers(self) -> None:
        """Deliver visible messages to blocked receivers (on their cores)."""
        for domain in self.domains.values():
            for tcb in domain.threads:
                if (
                    tcb.state is ThreadState.BLOCKED
                    and tcb.blocked_on_endpoint is not None
                ):
                    receiver_now = self.machine.cores[tcb.core_id].clock.now
                    value = self.endpoints.try_receive(
                        tcb.blocked_on_endpoint, receiver_now
                    )
                    if value is not None:
                        tcb.state = ThreadState.READY
                        tcb.blocked_on_endpoint = None
                        tcb.pending_obs = Observation(value=value, latency=0)
                        self._record(domain, tcb, value, 0)

    # -- interrupts ----------------------------------------------------------

    def _handle_irq(self, core: Core, domain: Domain, pending) -> None:
        """Deliver a device interrupt: kernel handler cost hits whoever runs."""
        instrumentation = self.machine.instrumentation
        instrumentation.set_context(
            f"{domain.name}/kernel", core.core_id, core.clock.now
        )
        cycles = _IRQ_HANDLER_BASE_CYCLES
        image = domain.kernel_image
        if image is not None:
            for line in range(_IRQ_HANDLER_LINES):
                paddr = image.line_paddr(_IRQ_HANDLER_LINE_OFFSET + line)
                cycles += core.cached_access(paddr, write=False, fetch=True)
        for word in range(2):
            cycles += core.cached_access(self.kernel_data_paddrs[word], write=False)
        core.clock.advance(cycles)
        self.irq_deliveries.append(
            IrqDeliveryRecord(
                core_id=core.core_id,
                line=pending.line,
                fire_time=pending.fire_time,
                delivered_at=core.clock.now,
                running_domain=domain.name,
                owner_domain=self.irq_policy.owner_of(pending.line),
                handler_cycles=cycles,
            )
        )

    # -- domain switches -------------------------------------------------------

    def _do_switch(self, core: Core, scheduled_at: int) -> None:
        core_id = core.core_id
        state = self.scheduler.state(core_id)
        from_domain = state.current
        to_domain = self.scheduler.peek_next(core_id)
        if from_domain is to_domain:
            # Intra-domain slice rollover: a cheap timer tick, no flush,
            # no padding (time protection acts on *domain* switches only).
            core.clock.advance(_TIMER_TICK_CYCLES)
            self.scheduler.advance(core_id, release_time=core.clock.now)
            return
        context = f"@switch:{from_domain.name}>{to_domain.name}"
        self.machine.instrumentation.set_context(context, core_id, core.clock.now)
        if self.capture_footprints:
            self.machine.instrumentation.track_footprint = True
            self.machine.instrumentation.reset_footprint()
        record = self.switch_path.execute(core, from_domain, to_domain, scheduled_at)
        if self.capture_footprints:
            self.step_footprints.append(
                ("2b", context, tuple(self.machine.instrumentation.footprint))
            )
        if self.capture_cases:
            self.step_cases.append(("2b", context))
        self.scheduler.advance(core_id, release_time=record.released_at)
        self.irq_policy.apply_masks(core.irq, to_domain)
        self._current_tcb[core_id] = None

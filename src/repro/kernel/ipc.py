"""Synchronous IPC endpoints with optional padded delivery.

Sect. 3.2: when Hi is a trusted downgrader (Figure 1), the *time* at
which its output message reaches Lo is itself a channel -- algorithmic
(secret-dependent crypto time), Trojan-modulated, or inherited from Hi's
own callers.  "Time protection here must make execution time
deterministic, meaning that message passing or context switching happen
at pre-determined times."

Cock et al. [2014] propose the model implemented here: a synchronous IPC
channel switches to the receiver only once the sender domain has executed
for a pre-determined minimum amount of time (``min_exec_cycles``, set per
endpoint by the system designer, who must account for the sender's WCET).
Messages also become *visible* to receivers no earlier than that release
point, so polling receivers learn nothing either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque


@dataclass
class Message:
    value: int
    sender_domain: str
    sent_at: int
    visible_at: int


@dataclass
class Endpoint:
    """A kernel IPC endpoint."""

    endpoint_id: int
    name: str
    min_exec_cycles: int = 0  # padded-delivery threshold (0 = unpadded)
    queue: Deque[Message] = field(default_factory=deque)
    # Designated receiver for synchronous "call" handoff, if any (a
    # repro.kernel.objects.Domain; untyped here to avoid a cycle).
    receiver_domain: Optional[object] = None

    def visible_message(self, now: int) -> Optional[Message]:
        if self.queue and self.queue[0].visible_at <= now:
            return self.queue[0]
        return None

    def next_visibility_time(self) -> Optional[int]:
        return self.queue[0].visible_at if self.queue else None


class EndpointTable:
    """All endpoints in the system, by id."""

    def __init__(self, padded_ipc: bool, default_min_cycles: int = 0):
        self.padded_ipc = padded_ipc
        self.default_min_cycles = default_min_cycles
        self._endpoints: Dict[int, Endpoint] = {}
        self._next_id = 1
        # Plain attribute so the kernel's per-step wakeup scan can skip
        # itself entirely on systems with no IPC endpoints at all.
        self.n_endpoints = 0

    def create(
        self,
        name: str,
        min_exec_cycles: Optional[int] = None,
        receiver_domain: Optional[object] = None,
    ) -> Endpoint:
        endpoint = Endpoint(
            endpoint_id=self._next_id,
            name=name,
            min_exec_cycles=(
                min_exec_cycles
                if min_exec_cycles is not None
                else self.default_min_cycles
            ),
            receiver_domain=receiver_domain,
        )
        self._endpoints[endpoint.endpoint_id] = endpoint
        self._next_id += 1
        self.n_endpoints = len(self._endpoints)
        return endpoint

    def get(self, endpoint_id: int) -> Endpoint:
        endpoint = self._endpoints.get(endpoint_id)
        if endpoint is None:
            raise KeyError(f"no endpoint {endpoint_id}")
        return endpoint

    def all(self) -> List[Endpoint]:
        return [self._endpoints[eid] for eid in sorted(self._endpoints)]

    # ------------------------------------------------------------------
    # Send-side semantics
    # ------------------------------------------------------------------

    def delivery_time(
        self, endpoint: Endpoint, now: int, sender_slice_start: int
    ) -> int:
        """When a message sent at ``now`` becomes visible.

        Padded: no earlier than ``sender_slice_start + min_exec_cycles``
        (the pre-determined release point).  Unpadded: immediately -- the
        send time leaks.
        """
        if self.padded_ipc and endpoint.min_exec_cycles > 0:
            return max(now, sender_slice_start + endpoint.min_exec_cycles)
        return now

    def enqueue(
        self,
        endpoint: Endpoint,
        value: int,
        sender_domain: str,
        now: int,
        sender_slice_start: int,
    ) -> Message:
        message = Message(
            value=value,
            sender_domain=sender_domain,
            sent_at=now,
            visible_at=self.delivery_time(endpoint, now, sender_slice_start),
        )
        endpoint.queue.append(message)
        return message

    # ------------------------------------------------------------------
    # Receive-side semantics
    # ------------------------------------------------------------------

    def try_receive(self, endpoint_id: int, now: int) -> Optional[int]:
        """Dequeue the head message if visible; None otherwise."""
        endpoint = self.get(endpoint_id)
        message = endpoint.visible_message(now)
        if message is None:
            return None
        endpoint.queue.popleft()
        return message.value

    def earliest_visibility(self, now: int) -> Optional[int]:
        """Earliest future visibility time across all endpoints."""
        times = [
            t
            for endpoint in self._endpoints.values()
            for t in [endpoint.next_visibility_time()]
            if t is not None and t > now
        ]
        return min(times) if times else None

"""Timing Hi events: the downgrader scenario of Sect. 3.2 / Figure 1.

An encryption component (Hi) is *supposed* to hand ciphertext to the
network stack (Lo) -- the message itself is a sanctioned flow.  What must
not flow is anything else: yet if the crypto's execution time depends on
the secret (an algorithmic channel), the *arrival time* of the ciphertext
leaks it.  "Time protection here must make execution time deterministic,
meaning that message passing or context switching happen at
pre-determined times."

With padded IPC delivery (Cock et al. [2014]), the synchronous call hands
over to the receiver's domain only at ``sender_slice_start +
min_exec_cycles``, a constant chosen by the system designer above the
crypto's WCET -- so Lo's receive timestamp carries nothing.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence

from ..hardware.isa import Access, Compute, ProgramContext, ReadTime, Syscall
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep
from .primeprobe import _tp_label

_HI_SLICE = 20000
_LO_SLICE = 8000
_CRYPTO_BASE_CYCLES = 1500
_CRYPTO_PER_SYMBOL_CYCLES = 400
_IPC_MIN_EXEC = 12000  # > crypto WCET for the symbol range used


def encryptor(ctx: ProgramContext):
    """Secret-dependent "encryption" time, then hand off to the network."""
    secret = ctx.params["secret"]
    endpoint = ctx.params["endpoint_id"]
    messages = ctx.params.get("messages", 4)
    for message in range(messages):
        # Algorithmic channel: work proportional to the secret.
        yield Compute(_CRYPTO_BASE_CYCLES + secret * _CRYPTO_PER_SYMBOL_CYCLES)
        for line in range(4):  # touch the plaintext/ciphertext buffers
            yield Access(ctx.data_base + line * ctx.line_size, write=True, value=message)
        yield Syscall("call", (endpoint, 0xC0DE + message))
    while True:
        yield Compute(100)


def network_stack(ctx: ProgramContext):
    """Receive ciphertexts, timestamping each arrival."""
    endpoint = ctx.params["endpoint_id"]
    results: List[int] = ctx.params["results"]
    messages = ctx.params.get("messages", 4)
    previous = None
    for _message in range(messages):
        yield Syscall("recv", (endpoint,))
        stamp = yield ReadTime()
        if previous is not None:
            results.append(stamp.value - previous)
        previous = stamp.value


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    symbols: Optional[Sequence[int]] = None,
    messages_per_run: int = 5,
    sweep_rounds: int = 1,
    quantum: int = 64,
) -> ChannelResult:
    """Measure the downgrader event-timing channel under ``tp``.

    The observation is the inter-arrival time of consecutive ciphertexts
    at the network stack (quantised); the symbol is the crypto secret.
    """

    def run_once(secret: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=_HI_SLICE)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=_LO_SLICE)
        endpoint = kernel.create_endpoint(
            "ciphertext", min_exec_cycles=_IPC_MIN_EXEC, receiver_domain=lo
        )
        kernel.create_thread(
            hi,
            encryptor,
            params={
                "secret": secret,
                "endpoint_id": endpoint.endpoint_id,
                "messages": messages_per_run,
            },
        )
        results: List[int] = []
        kernel.create_thread(
            lo,
            network_stack,
            params={
                "endpoint_id": endpoint.endpoint_id,
                "results": results,
                "messages": messages_per_run,
            },
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=messages_per_run * 600_000)
        return [value // quantum for value in results]

    if symbols is None:
        symbols = [0, 5, 10, 15]
    return run_symbol_sweep(
        name="downgrader event timing (Figure 1)",
        tp_label=_tp_label(tp) + (",padded_ipc" if tp.padded_ipc else ""),
        run_once=run_once,
        symbols=symbols,
        rounds=sweep_rounds,
    )

"""End-to-end covert message transmission over a measured channel.

Channel experiments measure per-symbol capacity; this module turns any of
them into an actual byte pipe -- chunk a message into symbols, transmit
each through a fresh system run, majority-decode the spy's observations,
and report bit error rate and (error-adjusted) bandwidth.  It is the
"attacker's view" of the same defence claims: a channel the analysis
calls closed must yield chance-level recovery here, whatever the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from ..analysis.bandwidth import BandwidthEstimate, effective_bit_rate
from .encoding import bits_to_int, hamming_error_rate, int_to_bits, majority


@dataclass
class TransmissionResult:
    """Outcome of transmitting one message through a covert channel."""

    sent_bits: List[int]
    received_bits: List[int]
    bit_error_rate: float
    symbol_errors: int
    symbols_sent: int
    symbol_period_cycles: float = 0.0
    clock_hz: float = 1e9  # nominal reporting frequency
    # True when the decoder emitted the same symbol for every chunk of a
    # multi-symbol message: the output carries zero information, whatever
    # the bit error rate happens to be.
    output_was_constant: bool = False

    @property
    def recovered(self) -> bool:
        return self.sent_bits == self.received_bits

    @property
    def bits_per_symbol(self) -> int:
        if not self.symbols_sent:
            return 0
        return len(self.sent_bits) // self.symbols_sent

    def bandwidth(self) -> BandwidthEstimate:
        """Raw channel rate at the nominal clock (bits/s)."""
        return BandwidthEstimate(
            bits_per_symbol=float(self.bits_per_symbol),
            symbol_period_cycles=self.symbol_period_cycles,
            clock_hz=self.clock_hz,
        )

    def effective_bits_per_second(self) -> float:
        """Error-adjusted rate (raw rate times the BSC capacity).

        A constant decoder output carries nothing: the rate is 0 then,
        whatever the bit error rate against the particular message.
        """
        if self.output_was_constant:
            return 0.0
        return effective_bit_rate(
            self.bandwidth().bits_per_second, self.bit_error_rate
        )

    def summary(self) -> str:
        if self.output_was_constant and not self.recovered:
            status = "constant output: zero information"
        elif self.recovered:
            status = "RECOVERED"
        else:
            status = "corrupted"
        sent = bits_to_int(self.sent_bits)
        received = bits_to_int(self.received_bits) if self.received_bits else 0
        text = (
            f"sent={sent:#x} received={received:#x} "
            f"BER={self.bit_error_rate:.2f} ({status})"
        )
        if self.symbol_period_cycles:
            text += (
                f", effective rate {self.effective_bits_per_second():,.0f} bit/s "
                f"@ {self.clock_hz / 1e9:g} GHz"
            )
        return text


class CovertTransmitter:
    """Drives a per-symbol channel experiment as a message pipe.

    Args:
        run_symbol: ``run_symbol(symbol) -> observations`` -- run one
            complete system transmitting ``symbol``; returns the spy's
            per-round observations.
        symbol_map: logical symbol value -> channel alphabet symbol
            (e.g. 2-bit value -> cache set index).  Symbols should be
            well separated in the channel's observation space.
        symbol_period_cycles: simulated cycles one symbol transmission
            costs (for bandwidth reporting; 0 disables).
    """

    def __init__(
        self,
        run_symbol: Callable[[Hashable], Sequence[Hashable]],
        symbol_map: Dict[int, Hashable],
        symbol_period_cycles: float = 0.0,
        clock_hz: float = 1e9,
    ):
        if not symbol_map:
            raise ValueError("symbol_map must not be empty")
        n_symbols = len(symbol_map)
        if n_symbols & (n_symbols - 1):
            raise ValueError("symbol_map size must be a power of two")
        self.run_symbol = run_symbol
        self.symbol_map = dict(symbol_map)
        self.bits_per_symbol = n_symbols.bit_length() - 1
        self.symbol_period_cycles = symbol_period_cycles
        self.clock_hz = clock_hz
        self._reverse = {v: k for k, v in symbol_map.items()}

    def _decode_observations(self, observations: Sequence[Hashable]) -> int:
        """Majority vote, snapped to the nearest alphabet symbol."""
        if not observations:
            return min(self.symbol_map)
        voted = majority(observations)
        if voted in self._reverse:
            return self._reverse[voted]
        # Snap numerically when possible, else fall back to the first.
        try:
            nearest = min(
                self.symbol_map,
                key=lambda k: abs(self.symbol_map[k] - voted),
            )
            return nearest
        except TypeError:
            return min(self.symbol_map)

    def transmit(self, message: int, width_bits: int) -> TransmissionResult:
        """Send ``message`` (``width_bits`` wide); returns the result."""
        if width_bits % self.bits_per_symbol:
            raise ValueError(
                f"width {width_bits} not a multiple of "
                f"{self.bits_per_symbol} bits/symbol"
            )
        sent_bits = int_to_bits(message, width_bits)
        received_bits: List[int] = []
        decoded_symbols: List[int] = []
        symbol_errors = 0
        for start in range(0, width_bits, self.bits_per_symbol):
            chunk = sent_bits[start : start + self.bits_per_symbol]
            logical = bits_to_int(chunk)
            observations = self.run_symbol(self.symbol_map[logical])
            decoded = self._decode_observations(observations)
            if decoded != logical:
                symbol_errors += 1
            received_bits.extend(int_to_bits(decoded, self.bits_per_symbol))
            decoded_symbols.append(decoded)
        return TransmissionResult(
            sent_bits=sent_bits,
            received_bits=received_bits,
            bit_error_rate=hamming_error_rate(sent_bits, received_bits),
            symbol_errors=symbol_errors,
            symbols_sent=len(decoded_symbols),
            symbol_period_cycles=self.symbol_period_cycles,
            clock_hz=self.clock_hz,
            output_was_constant=(
                len(decoded_symbols) > 1 and len(set(decoded_symbols)) == 1
            ),
        )

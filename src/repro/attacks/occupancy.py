"""Cache-occupancy channel: timing your own progress (Sect. 3.1).

The coarsest instance of "Lo's rate of progress is affected by cache
misses": the victim's working-set *size* modulates how much of the spy's
buffer survives the victim's slice, so the spy's traversal time of a
fixed buffer encodes the victim's memory intensity -- no per-set address
resolution required.  Flushing core-private state (plus LLC colouring)
makes the spy's traversal time a function of its own history only.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence

from ..hardware.isa import Access, Compute, ProgramContext, ReadTime, Syscall
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep
from .primeprobe import _tp_label

_HI_SLICE = 6000
_LO_SLICE = 12000


def wss_victim(ctx: ProgramContext):
    """Cycle through a working set of ``symbol`` pages, forever."""
    pages = max(1, ctx.params["symbol"])
    lines_per_page = ctx.page_size // ctx.line_size
    n_pages = ctx.data_size // ctx.page_size
    while True:
        for page in range(min(pages, n_pages)):
            for line in range(lines_per_page):
                yield Access(
                    ctx.data_base + page * ctx.page_size + line * ctx.line_size,
                    write=True,
                    value=page,
                )


def traversal_spy(ctx: ProgramContext):
    """Time a fixed traversal of the spy's own buffer each round."""
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 6)
    lines_per_page = ctx.page_size // ctx.line_size
    n_pages = ctx.data_size // ctx.page_size
    addresses = [
        ctx.data_base + page * ctx.page_size + line * ctx.line_size
        for page in range(n_pages)
        for line in range(lines_per_page)
    ]
    step = 7 if len(addresses) % 7 else 5  # defeat the stride prefetcher
    walk = [addresses[(i * step + 3) % len(addresses)] for i in range(len(addresses))]
    for address in walk:
        yield Access(address)  # initial fill
    for _round in range(rounds):
        yield Syscall("sleep", (ctx.params["sleep_cycles"],))
        t0 = yield ReadTime()
        for address in walk:
            yield Access(address)
        t1 = yield ReadTime()
        results.append(t1.value - t0.value)


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    symbols: Optional[Sequence[int]] = None,
    rounds_per_run: int = 6,
    sweep_rounds: int = 1,
    quantum: int = 64,
) -> ChannelResult:
    """Measure the occupancy channel: symbol = victim working-set pages.

    Observations are traversal times quantised to ``quantum`` cycles so
    that residual single-cycle jitter does not register as capacity.
    """

    def run_once(symbol: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=_HI_SLICE)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=_LO_SLICE)
        kernel.create_thread(hi, wss_victim, params={"symbol": symbol}, data_pages=12)
        results: List[int] = []
        kernel.create_thread(
            lo,
            traversal_spy,
            data_pages=6,
            params={
                "results": results,
                "rounds": rounds_per_run,
                "sleep_cycles": _LO_SLICE + _HI_SLICE // 2,
            },
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=rounds_per_run * 500_000)
        kept = results[2:] if len(results) > 2 else results
        return [value // quantum for value in kept]

    if symbols is None:
        symbols = [1, 4, 8, 12]
    return run_symbol_sweep(
        name="cache occupancy (timing own progress)",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=symbols,
        rounds=sweep_rounds,
    )

"""The stateless-interconnect covert channel (Sect. 2): out of scope, by design.

"Such channels, exploiting the finite bandwidth of interconnects through
concurrent competing access, are trivial to implement: a Trojan running
on one core signals by modulating its use of interconnect bandwidth, and
a spy running on a different core measures the remaining bandwidth...
Such channels can only be prevented with hardware support that is not
available on any contemporary mainstream hardware."

This experiment demonstrates exactly that: with *every* time-protection
mechanism enabled (colouring, cloning, flushing, padding, IRQ
partitioning), the cross-core bandwidth channel still decodes perfectly.
The MBA variant reproduces footnote 1: approximate, windowed throttling
narrows but does not close the channel.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Sequence

from ..hardware.isa import Access, Compute, FlushLine, ProgramContext, ReadTime
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep
from .primeprobe import _tp_label


def bandwidth_trojan(ctx: ProgramContext):
    """Saturate the memory bus iff the bit is 1 (flush+reload = always-miss)."""
    bit = ctx.params["bit"]
    lines = 8
    while True:
        if bit:
            for line in range(lines):
                address = ctx.data_base + line * ctx.line_size
                yield FlushLine(address)
                yield Access(address)
        else:
            yield Compute(lines * 40)


def bandwidth_spy(ctx: ProgramContext):
    """Measure the latency of guaranteed-miss probes: residual bandwidth."""
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 8)
    probes = ctx.params.get("probes_per_round", 24)
    for round_index in range(rounds):
        t0 = yield ReadTime()
        for probe in range(probes):
            address = ctx.data_base + probe * ctx.line_size
            yield FlushLine(address)
            yield Access(address)
            # Dither the probe spacing: in a fully deterministic system a
            # fixed-period probe train phase-locks with the Trojan's bus
            # pattern and can sit entirely inside its gaps; sweeping the
            # phase makes the measured total reflect true bus occupancy.
            yield Compute((probe * 13 + round_index * 7) % 37)
        t1 = yield ReadTime()
        results.append(t1.value - t0.value)


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    rounds_per_run: int = 8,
    sweep_rounds: int = 2,
    quantum: int = 64,
) -> ChannelResult:
    """Measure the cross-core bandwidth channel under ``tp``.

    Expected result: capacity stays high for every ``tp`` -- including
    full time protection -- because the interconnect is stateless and the
    OS has no mechanism for it.
    """

    def run_once(bit: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        if len(machine.cores) < 2:
            raise ValueError("the interconnect experiment needs two cores")
        kernel = Kernel(machine, tp)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=8000)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=8000)
        results: List[int] = []
        kernel.create_thread(
            lo,
            bandwidth_spy,
            core_id=0,
            params={"results": results, "rounds": rounds_per_run},
        )
        kernel.create_thread(hi, bandwidth_trojan, core_id=1, params={"bit": bit})
        kernel.set_schedule(0, [(lo, None)])
        kernel.set_schedule(1, [(hi, None)])
        kernel.run(max_cycles=rounds_per_run * 120_000)
        kept = results[1:] if len(results) > 1 else results
        return [value // quantum for value in kept]

    return run_symbol_sweep(
        name="stateless interconnect bandwidth channel (cross-core)",
        tp_label=_tp_label(tp)
        + (",MBA" if machine_factory().interconnect.mba else ""),
        run_once=run_once,
        symbols=[0, 1],
        rounds=sweep_rounds,
    )

"""Channel implementations: the threats of Sects. 2-4 of the paper.

Each module implements one channel as Trojan/victim + spy programs over
the abstract ISA, plus an ``experiment(tp, machine_factory, ...)`` entry
point returning a :class:`~repro.attacks.harness.ChannelResult` that the
analysis layer quantifies.  Running the same experiment with time
protection off and on is how every defence claim in the paper is
exercised.
"""

from . import (
    branch_channel,
    event_timing,
    flushreload,
    interconnect_channel,
    irq_channel,
    occupancy,
    primeprobe,
    switch_latency,
)
from .encoding import bits_to_int, hamming_error_rate, int_to_bits, majority
from .harness import ChannelResult, run_symbol_sweep
from .transmission import CovertTransmitter, TransmissionResult

__all__ = [
    "ChannelResult",
    "CovertTransmitter",
    "TransmissionResult",
    "bits_to_int",
    "branch_channel",
    "event_timing",
    "flushreload",
    "hamming_error_rate",
    "int_to_bits",
    "interconnect_channel",
    "irq_channel",
    "majority",
    "occupancy",
    "primeprobe",
    "run_symbol_sweep",
    "switch_latency",
]

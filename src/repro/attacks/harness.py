"""Shared experiment harness for channel measurements.

Every attack experiment follows the same shape: build a complete system
(machine + kernel + domains + programs) for one input symbol, run it,
extract the spy's observations, repeat over a symbol alphabet, and
quantify the resulting (symbol, observation) samples as a channel.  The
harness owns that loop so individual attacks only provide programs and a
feature extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

from ..analysis import (
    ChannelMatrix,
    capacity_bits,
    decode_accuracy,
    from_samples,
    min_leakage,
    mutual_information_from_samples,
)


@dataclass
class ChannelResult:
    """Measured samples plus derived channel statistics."""

    name: str
    tp_label: str
    samples: List[Tuple[Hashable, Hashable]]
    symbol_period_cycles: float = 0.0
    metadata: dict = field(default_factory=dict)

    def matrix(self) -> ChannelMatrix:
        return from_samples(self.samples)

    def capacity_bits(self) -> float:
        return capacity_bits(self.matrix())

    def mutual_information_bits(self) -> float:
        # Same sample-level estimator the analysis layer and the synth
        # env fitness use -- one MI implementation package-wide.
        return mutual_information_from_samples(self.samples)

    def min_leakage_bits(self) -> float:
        return min_leakage(self.matrix())

    def decode_accuracy(self) -> float:
        return decode_accuracy(self.samples)

    def n_symbols(self) -> int:
        return len({symbol for symbol, _obs in self.samples})

    def chance_accuracy(self) -> float:
        n = self.n_symbols()
        return 1.0 / n if n else 0.0

    def stats(self) -> dict:
        """All derived channel statistics as one plain dict.

        Plain data only (floats/ints), so the result pickles across
        process boundaries and serialises to JSON — this is what the
        campaign subsystem stores per trial.
        """
        return {
            "capacity_bits": self.capacity_bits(),
            "mutual_information_bits": self.mutual_information_bits(),
            "min_leakage_bits": self.min_leakage_bits(),
            "decode_accuracy": self.decode_accuracy(),
            "chance_accuracy": self.chance_accuracy(),
            "n_symbols": self.n_symbols(),
            "n_samples": len(self.samples),
            "symbol_period_cycles": self.symbol_period_cycles,
        }

    def to_record(self, include_samples: bool = False) -> dict:
        """A JSON-ready record of this measurement.

        Samples are omitted by default (they dominate the size and the
        derived statistics already summarise them); pass
        ``include_samples=True`` to keep the raw (symbol, observation)
        pairs.
        """
        record = {
            "name": self.name,
            "tp_label": self.tp_label,
            "stats": self.stats(),
            "metadata": dict(self.metadata),
        }
        if include_samples:
            record["samples"] = [list(sample) for sample in self.samples]
        return record

    def summary(self) -> str:
        return (
            f"{self.name} [{self.tp_label}]: "
            f"capacity={self.capacity_bits():.3f} bits/symbol, "
            f"decode accuracy={self.decode_accuracy():.2f} "
            f"(chance {self.chance_accuracy():.2f}), "
            f"{len(self.samples)} samples"
        )


def run_symbol_sweep(
    name: str,
    tp_label: str,
    run_once: Callable[[Hashable], Sequence[Hashable]],
    symbols: Sequence[Hashable],
    rounds: int = 1,
    metadata: Optional[dict] = None,
) -> ChannelResult:
    """Run ``run_once(symbol)`` for each symbol (``rounds`` times) and pool.

    ``run_once`` returns the spy's per-round observations for one full
    system run transmitting ``symbol``; each observation becomes one
    sample.
    """
    samples: List[Tuple[Hashable, Hashable]] = []
    for _round in range(rounds):
        for symbol in symbols:
            for observation in run_once(symbol):
                samples.append((symbol, observation))
    if not samples:
        raise RuntimeError(f"experiment {name!r} produced no samples")
    return ChannelResult(
        name=name,
        tp_label=tp_label,
        samples=samples,
        metadata=dict(metadata or {}),
    )

"""The switch-latency channel: why padding exists (Sect. 4.2).

"For writable micro-architectural state (e.g. the L1 data cache), the
latency of the flush is itself dependent on execution history (number of
dirty lines), which would create a channel.  We avoid this channel by
padding the domain-switch latency to a fixed value."

The Trojan dirties a secret-dependent number of cache lines each slice;
the flush's write-back latency then shifts when Lo's next slice starts.
Lo timestamps its slice starts and decodes the secret from consecutive
start-to-start periods.  With padding, every period is constant.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence

from ..hardware.isa import Access, Compute, ProgramContext, ReadTime, Syscall
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep
from .primeprobe import _tp_label

_HI_SLICE = 5000
_LO_SLICE = 5000


def dirty_trojan(ctx: ProgramContext):
    """Dirty ``symbol`` distinct lines each slice, then go quiet."""
    symbol = ctx.params["symbol"]
    lines_per_page = ctx.page_size // ctx.line_size
    while True:
        for line in range(symbol):
            page, offset = divmod(line, lines_per_page)
            yield Access(
                ctx.data_base + page * ctx.page_size + offset * ctx.line_size,
                write=True,
                value=line,
            )
        yield Syscall("sleep", (_HI_SLICE + _LO_SLICE,))


def slice_start_spy(ctx: ProgramContext):
    """Timestamp each of the spy's slice starts; report the periods."""
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 8)
    previous = None
    for _round in range(rounds):
        stamp = yield ReadTime()
        if previous is not None:
            results.append(stamp.value - previous)
        previous = stamp.value
        # Sleep past our own slice end; we resume at the start of our
        # next slice, right after the (possibly unpadded) switch.
        yield Syscall("sleep", (_LO_SLICE + _HI_SLICE // 2,))


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    symbols: Optional[Sequence[int]] = None,
    rounds_per_run: int = 8,
    sweep_rounds: int = 1,
    quantum: int = 8,
    on_kernel: Optional[Callable[[Kernel], None]] = None,
) -> ChannelResult:
    """Measure the dirty-line switch-latency channel under ``tp``."""

    def run_once(symbol: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=_HI_SLICE)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=_LO_SLICE)
        kernel.create_thread(hi, dirty_trojan, params={"symbol": symbol}, data_pages=4)
        results: List[int] = []
        kernel.create_thread(
            lo,
            slice_start_spy,
            params={"results": results, "rounds": rounds_per_run},
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=rounds_per_run * 300_000)
        if on_kernel is not None:
            on_kernel(kernel)
        kept = results[2:] if len(results) > 2 else results
        return [value // quantum for value in kept]

    machine = machine_factory()
    if symbols is None:
        max_lines = (
            machine.config.l1d_geometry.sets * machine.config.l1d_geometry.ways
        )
        symbols = sorted({1, max_lines // 3, 2 * max_lines // 3, max_lines})
    return run_symbol_sweep(
        name="dirty-line switch-latency channel",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=symbols,
        rounds=sweep_rounds,
    )

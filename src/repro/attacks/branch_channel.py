"""The branch-predictor channel (Sect. 3.1's "branch predictors").

Branch predictors are untagged: entries trained by one domain are
consulted by the next domain's branches at the same (virtual) pc --
exactly the residue behind the Spectre-family attacks the paper's
introduction cites.  The Trojan trains the shared direction predictor
taken or not-taken at the spy's own branch addresses; the spy then times
a run of not-taken branches -- inherited taken-training makes every one
of them mispredict, adding a fixed penalty each.  Flushing predictor
state on the domain switch leaves the spy facing the reset-state
prediction, identical whatever the Trojan trained.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Sequence

from ..hardware.cpu import INSTRUCTION_BYTES
from ..hardware.isa import Branch, Compute, ProgramContext, ReadTime, Syscall
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep
from .primeprobe import _tp_label

_HI_SLICE = 5000
_LO_SLICE = 10000
_TRAIN_BRANCHES = 12


def branch_trojan(ctx: ProgramContext):
    """Saturate the predictor taken (bit 1) or not-taken (bit 0).

    Both domains' code regions start at the same virtual base and the
    predictor is untagged, so as the Trojan's pc wraps around its code
    page it trains *every* pc slot the spy's branches will later index.
    """
    bit = ctx.params["bit"]
    while True:
        yield Branch(taken=bool(bit))


def branch_spy(ctx: ProgramContext):
    """Time a run of not-taken branches right after the slice starts."""
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 6)
    threshold = ctx.params["penalty_threshold"]
    for _round in range(rounds):
        t0 = yield ReadTime()
        for _branch in range(_TRAIN_BRANCHES):
            yield Branch(taken=False)
        t1 = yield ReadTime()
        results.append(1 if (t1.value - t0.value) > threshold else 0)
        yield Syscall("sleep", (_LO_SLICE + _HI_SLICE // 2,))


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    rounds_per_run: int = 8,
    sweep_rounds: int = 2,
) -> ChannelResult:
    """Measure the cross-domain branch-predictor channel under ``tp``."""

    def run_once(bit: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=_HI_SLICE)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=_LO_SLICE)
        kernel.create_thread(hi, branch_trojan, params={"bit": bit})
        results: List[int] = []
        # A mispredicted run pays the penalty on most of the probe
        # branches; half the total penalty cleanly separates the cases.
        config = machine.config
        quiet_step = (
            config.latency.base_cycles
            + config.l1i_latency.hit_cycles
            + config.latency.tlb_hit_cycles
            + 2
        )
        # A taken-trained predictor makes roughly every other probe
        # branch mispredict (taken training covers every other pc slot);
        # a quarter of the full penalty splits the two cases.
        threshold = (
            _TRAIN_BRANCHES * quiet_step
            + (_TRAIN_BRANCHES // 4) * config.latency.mispredict_penalty_cycles
        )
        kernel.create_thread(
            lo,
            branch_spy,
            params={
                "results": results,
                "rounds": rounds_per_run,
                "penalty_threshold": threshold,
            },
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=rounds_per_run * 300_000)
        # The early rounds are dominated by the spy's own cold
        # instruction-cache misses as its pc walks fresh code lines.
        return results[4:] if len(results) > 4 else results

    return run_symbol_sweep(
        name="branch-predictor training channel",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=[0, 1],
        rounds=sweep_rounds,
    )

"""Prime-and-probe channels (Sect. 3.1; Percival [2005], Osvik et al. [2006]).

Two variants, matching the paper's two sharing modes:

* **Time-shared L1** (:func:`l1_experiment`): Trojan and spy share a core.
  The Trojan encodes a symbol by hammering one L1 set; the spy primes the
  whole L1, sleeps through the Trojan's slice, then probes each set with
  timed loads -- the slow set names the symbol.  Flushing the L1 on every
  domain switch (plus padding) is the defence: L1 caches have a single
  page colour, so partitioning cannot help (Sect. 4.1).

* **Concurrent LLC** (:func:`llc_experiment`): Trojan and spy run on
  different cores sharing the LLC.  The Trojan hammers pages of one
  colour; the spy prime-probes one page of each colour and watches which
  colour's probe slows down.  "Partitioning is the only option where
  concurrent accesses happen": cache colouring gives the domains disjoint
  colours, after which the spy's probes can no longer collide with the
  Trojan's working set.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence

from ..hardware.isa import Access, Compute, ProgramContext, ReadTime, Syscall
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep

_HI_SLICE = 4000
_LO_SLICE = 12000


# ----------------------------------------------------------------------
# Time-shared L1 variant
# ----------------------------------------------------------------------

def l1_trojan(ctx: ProgramContext):
    """Hammer one L1 set (page-offset addressed) forever."""
    symbol = ctx.params["symbol"]
    n_pages = ctx.data_size // ctx.page_size
    # Instructions are immutable, so the hammer sequence is built once.
    accesses = [
        Access(
            ctx.data_base + page * ctx.page_size + symbol * ctx.line_size,
            write=True,
            value=symbol,
        )
        for page in range(n_pages)
    ]
    while True:
        for access in accesses:
            yield access


def l1_spy(ctx: ProgramContext):
    """Differential prime-and-probe over all L1 sets.

    Each round: prime every set (both ways), time a per-set probe as the
    baseline, sleep through the Trojan's slice, time the probe again, and
    report the set with the largest latency increase.  The differential
    cancels the deterministic pollution of the spy's own kernel entries
    (the sleep syscall touches kernel data in fixed sets); only the
    Trojan's evictions remain.
    """
    n_sets = ctx.params["l1_sets"]
    ways_pages = ctx.params.get("prime_pages", 2)
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 6)
    # Instructions are immutable; build the prime walk, per-set probe
    # lines, timer and sleep once and replay them every round.
    read_time = ReadTime()
    sleep = Syscall("sleep", (ctx.params["sleep_cycles"],))
    prime = [
        Access(ctx.data_base + page * ctx.page_size + set_index * ctx.line_size)
        for page in range(ways_pages)
        for set_index in range(n_sets)
    ]
    probe_lines = [
        [
            Access(ctx.data_base + page * ctx.page_size + set_index * ctx.line_size)
            for page in range(ways_pages)
        ]
        for set_index in range(n_sets)
    ]

    def probe():
        latencies = []
        for lines in probe_lines:
            t0 = yield read_time
            for access in lines:
                yield access
            t1 = yield read_time
            latencies.append(t1.value - t0.value)
        return latencies

    for _round in range(rounds):
        # Prime: cover every set with `ways_pages` lines.
        for access in prime:
            yield access
        baseline = yield from probe()
        # Sleep through (at least) one Trojan slice.
        yield sleep
        after = yield from probe()
        delta = [after[s] - baseline[s] for s in range(n_sets)]
        slowest = max(range(n_sets), key=lambda s: delta[s])
        results.append(slowest)


def l1_experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    symbols: Optional[Sequence[int]] = None,
    rounds_per_run: int = 6,
    sweep_rounds: int = 1,
    on_kernel: Optional[Callable[[Kernel], None]] = None,
) -> ChannelResult:
    """Measure the time-shared L1 prime-and-probe channel under ``tp``.

    Prime depth and slice lengths scale with the L1 geometry: the spy
    needs ``ways`` lines per set to own the whole cache, the Trojan needs
    ``ways`` conflicting lines to evict a full set, and the spy's slice
    must fit a prime plus two timed probes.

    ``on_kernel`` is called with each finished run's kernel (bench step
    accounting, golden-trace capture) before its observations are folded
    into the sweep.
    """

    def run_once(symbol: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        geometry = machine.config.l1d_geometry
        lo_slice = max(_LO_SLICE, geometry.sets * geometry.ways * 80)
        hi_slice = _HI_SLICE
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=hi_slice)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=lo_slice)
        kernel.create_thread(
            hi, l1_trojan, params={"symbol": symbol}, data_pages=geometry.ways
        )
        results: List[int] = []
        kernel.create_thread(
            lo,
            l1_spy,
            params={
                "l1_sets": geometry.sets,
                "prime_pages": geometry.ways,
                "results": results,
                "rounds": rounds_per_run,
                "sleep_cycles": lo_slice + hi_slice // 2,
            },
            data_pages=geometry.ways,
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=rounds_per_run * (60 * lo_slice))
        if on_kernel is not None:
            on_kernel(kernel)
        # The first rounds run before prime/sleep aligns with the domain
        # schedule; drop them as warmup.
        return results[2:] if len(results) > 2 else results

    machine = machine_factory()
    if symbols is None:
        symbols = list(range(machine.config.l1d_geometry.sets))
    return run_symbol_sweep(
        name="prime+probe L1 (time-shared)",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=symbols,
        rounds=sweep_rounds,
        metadata={"l1_sets": machine.config.l1d_geometry.sets},
    )


# ----------------------------------------------------------------------
# Concurrent LLC variant
# ----------------------------------------------------------------------

def llc_trojan(ctx: ProgramContext):
    """Hammer every line of the data pages that have the symbol's colour.

    Without colouring the Trojan's pages span all colours, so it can
    modulate exactly the LLC region named by the symbol; with colouring
    its pages only ever have its own domain's colours and the loop
    degenerates to hammering its own partition.
    """
    symbol = ctx.params["symbol"]
    n_colours = ctx.params["n_colours"]
    target_pages = [
        page
        for page, colour in enumerate(ctx.page_colours)
        if colour == symbol % n_colours
    ]
    if not target_pages:
        # Colouring denied the Trojan any page of that colour: hammer the
        # first page so it still executes (and still leaks nothing).
        target_pages = [0]
    lines_per_page = ctx.page_size // ctx.line_size
    while True:
        for page in target_pages:
            for line in range(lines_per_page):
                yield Access(
                    ctx.data_base + page * ctx.page_size + line * ctx.line_size,
                    write=True,
                    value=symbol,
                )


def llc_spy(ctx: ProgramContext):
    """Continuously prime-probe an eviction set per colour.

    The per-colour probe set spans several pages so it exceeds the
    private L1/L2 associativity: the probe's own lines self-evict from
    the private levels, and the timed reload measures *LLC* residency --
    the standard construction for last-level prime-and-probe.  The colour
    whose probe slows down is the colour the Trojan is hammering.
    """
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 8)
    pages_of_colour: dict = {}
    for page, colour in enumerate(ctx.page_colours):
        pages_of_colour.setdefault(colour, []).append(page)
    colours = sorted(pages_of_colour)
    lines_per_page = ctx.page_size // ctx.line_size

    def probe_addresses(colour):
        addresses = [
            ctx.data_base + page * ctx.page_size + line * ctx.line_size
            for page in pages_of_colour[colour]
            for line in range(lines_per_page)
        ]
        # Deterministically permute so consecutive strides vary: a
        # sequential walk would train the stride prefetcher and hide LLC
        # state behind prefetch hits (the standard countermeasure used by
        # real LLC prime-and-probe implementations).
        count = len(addresses)
        step = 7 if count % 7 else 5
        return [addresses[(i * step + 3) % count] for i in range(count)]

    def probe_colour(colour):
        t0 = yield ReadTime()
        for address in probe_addresses(colour):
            yield Access(address)
        t1 = yield ReadTime()
        return t1.value - t0.value

    # Prime every colour once (also warms translations).
    for colour in colours:
        yield from probe_colour(colour)
    for _round in range(rounds):
        yield Compute(2000)  # let the Trojan work
        latencies = []
        for colour in colours:
            latency = yield from probe_colour(colour)
            latencies.append(latency)
        slowest = colours[max(range(len(colours)), key=lambda i: latencies[i])]
        results.append(slowest)


def llc_experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    symbols: Optional[Sequence[int]] = None,
    rounds_per_run: int = 8,
    sweep_rounds: int = 1,
    on_kernel: Optional[Callable[[Kernel], None]] = None,
) -> ChannelResult:
    """Measure the concurrent (cross-core) LLC channel under ``tp``."""

    def run_once(symbol: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        if len(machine.cores) < 2:
            raise ValueError("the LLC experiment needs a 2-core machine")
        kernel = Kernel(machine, tp)
        n_colours = machine.n_colours
        lo = kernel.create_domain("Lo", n_colours=3, slice_cycles=_LO_SLICE)
        hi = kernel.create_domain("Hi", n_colours=3, slice_cycles=_HI_SLICE)
        # Eviction-set sizing: each colour-c page contributes one line to
        # every private-L2 set the colour maps to, so (l2.ways + 2) pages
        # per colour overflow the private levels while still fitting the
        # (larger) LLC colour capacity -- the probe then measures LLC
        # residency, not private-cache residency.
        pages_per_colour = machine.config.l2_geometry.ways + 2
        buffer_pages = pages_per_colour * n_colours
        results: List[int] = []
        kernel.create_thread(
            lo,
            llc_spy,
            core_id=0,
            data_pages=buffer_pages,
            params={
                "results": results,
                "rounds": rounds_per_run,
                "n_colours": n_colours,
            },
        )
        kernel.create_thread(
            hi,
            llc_trojan,
            core_id=1,
            data_pages=buffer_pages,
            params={"symbol": symbol, "n_colours": n_colours},
        )
        kernel.set_schedule(0, [(lo, None)])
        kernel.set_schedule(1, [(hi, None)])
        kernel.run(max_cycles=rounds_per_run * 200_000)
        if on_kernel is not None:
            on_kernel(kernel)
        return results[1:] if len(results) > 1 else results

    machine = machine_factory()
    if symbols is None:
        symbols = list(range(machine.n_colours))
    return run_symbol_sweep(
        name="prime+probe LLC (concurrent, cross-core)",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=symbols,
        rounds=sweep_rounds,
        metadata={"n_colours": machine.n_colours},
    )


def _tp_label(tp: TimeProtectionConfig) -> str:
    mechanisms = tp.enabled_mechanisms()
    return "TP:" + (",".join(mechanisms) if mechanisms else "none")

"""Flush+Reload on shared kernel text (Yarom & Falkner [2014]).

Sect. 4.2: "even read-only sharing of code is sufficient for creating a
channel [Gullasch et al. 2011; Yarom and Falkner 2014], we also colour
the kernel image ... a policy-free kernel clone mechanism".

Without cloning, every domain's "kernel text" mapping aliases the same
physical master image.  The spy flushes the cache lines of a chosen
syscall handler, waits through the victim's slice, then reloads them with
timing: a fast reload means the victim executed that handler.  With
cloning, the spy's mapping resolves to its *own domain's* image, so the
victim's kernel activity leaves no trace the spy can address -- the
channel is closed structurally, not just statistically.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence

from ..hardware.isa import Access, Compute, FlushLine, ProgramContext, ReadTime, Syscall
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep
from .primeprobe import _tp_label

_HI_SLICE = 5000
_LO_SLICE = 10000

# Text-line window of the "nop" syscall handler (see
# repro.kernel.syscalls._OP_COSTS): the probe target.
_TARGET_LINE_OFFSET = 32
_TARGET_LINES = 8


def victim(ctx: ProgramContext):
    """Execute the probed syscall iff the secret bit is 1."""
    bit = ctx.params["bit"]
    while True:
        if bit:
            yield Syscall("nop")
            yield Compute(50)
        else:
            yield Compute(400)


def fr_spy(ctx: ProgramContext):
    """Flush the handler's lines, wait a slice, reload with timing."""
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 6)
    threshold = ctx.params["hit_threshold"]
    base = ctx.shared_text_base
    targets = [
        base + (_TARGET_LINE_OFFSET + line) * ctx.line_size
        for line in range(_TARGET_LINES)
    ]
    # Reload in a permuted order so the probe's own stride does not train
    # the prefetcher (which would turn every reload into a prefetch hit).
    reload_order = [targets[(i * 3 + 1) % _TARGET_LINES] for i in range(_TARGET_LINES)]
    for _round in range(rounds):
        for address in targets:
            yield FlushLine(address)
        yield Syscall("sleep", (ctx.params["sleep_cycles"],))
        hits = 0
        for address in reload_order:
            t0 = yield ReadTime()
            yield Access(address)
            t1 = yield ReadTime()
            if (t1.value - t0.value) <= threshold:
                hits += 1
        results.append(1 if hits >= _TARGET_LINES // 2 else 0)


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    rounds_per_run: int = 6,
    sweep_rounds: int = 2,
    on_kernel: Optional[Callable[[Kernel], None]] = None,
) -> ChannelResult:
    """Measure the kernel-text Flush+Reload channel under ``tp``."""

    def run_once(bit: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=_HI_SLICE)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=_LO_SLICE)
        kernel.create_thread(hi, victim, params={"bit": bit})
        results: List[int] = []
        config = machine.config
        # A reload that hits the LLC is clearly below this; a DRAM miss
        # is clearly above (the spy calibrates this in reality).
        threshold = (
            config.latency.readtime_cycles * 2
            + config.l1d_latency.hit_cycles
            + config.l2_latency.hit_cycles
            + config.llc_latency.hit_cycles
            + config.interconnect_transfer_cycles
        )
        kernel.create_thread(
            lo,
            fr_spy,
            params={
                "results": results,
                "rounds": rounds_per_run,
                "hit_threshold": threshold,
                "sleep_cycles": _LO_SLICE + _HI_SLICE // 2,
            },
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=rounds_per_run * 400_000)
        if on_kernel is not None:
            on_kernel(kernel)
        return results[2:] if len(results) > 2 else results

    return run_symbol_sweep(
        name="flush+reload on kernel text",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=[0, 1],
        rounds=sweep_rounds,
    )

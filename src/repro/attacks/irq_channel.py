"""The interrupt channel (Sect. 4.2).

"Interrupts could also be used as a channel, if the Trojan triggers an
I/O such that its completion interrupt fires during Lo's execution."

The Trojan programs a device whose completion IRQ is timed to land inside
Lo's slice when the secret bit is 1 (and inside its own slice when 0).
Lo runs a tight timestamp loop; an interrupt delivered mid-loop inserts
the kernel handler's latency as a visible gap.  With interrupt
partitioning, the Trojan's line is masked whenever Lo runs, so the
completion is deferred to the Trojan's own next slice and Lo's loop stays
gapless.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Sequence

from ..hardware.isa import Compute, ProgramContext, ReadTime, Syscall
from ..hardware.machine import Machine
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig
from .harness import ChannelResult, run_symbol_sweep
from .primeprobe import _tp_label

_HI_SLICE = 6000
_LO_SLICE = 6000
_TROJAN_IRQ_LINE = 3


def irq_trojan(ctx: ProgramContext):
    """Aim a completion interrupt into Lo's slice iff the bit is 1."""
    bit = ctx.params["bit"]
    lo_slice = ctx.params["lo_slice"]
    hi_slice = ctx.params["hi_slice"]
    switch_estimate = ctx.params["switch_estimate"]
    while True:
        if bit:
            # Submitting near our own slice start, the next Lo slice
            # begins after the rest of our slice plus one switch; aim
            # early inside it.  (The Trojan knows the static schedule --
            # it is public configuration.)
            yield Syscall(
                "io_submit",
                (_TROJAN_IRQ_LINE, hi_slice + switch_estimate + lo_slice // 2, 1),
            )
        yield Syscall("sleep", (lo_slice + hi_slice,))


def gap_spy(ctx: ProgramContext):
    """Tight rdtsc loop; report the largest inter-sample gap per slice.

    A warm-up pass absorbs the cold instruction-cache misses the spy
    inherits from flush-on-switch (those are its own, deterministic
    start-up costs, not signal); only the warm steady-state loop is
    sensitive to injected interrupt handlers.
    """
    results: List[int] = ctx.params["results"]
    rounds = ctx.params.get("rounds", 6)
    warmup = ctx.params.get("warmup_samples", 90)
    samples_per_round = ctx.params.get("samples_per_round", 300)
    gap_threshold = ctx.params["gap_threshold"]
    for _round in range(rounds):
        for _i in range(warmup):
            yield ReadTime()
        previous = None
        max_gap = 0
        for _i in range(samples_per_round):
            stamp = yield ReadTime()
            if previous is not None:
                max_gap = max(max_gap, stamp.value - previous)
            previous = stamp.value
        results.append(1 if max_gap > gap_threshold else 0)
        yield Syscall("sleep", (ctx.params["sleep_cycles"],))


def experiment(
    tp: TimeProtectionConfig,
    machine_factory: Callable[[], Machine],
    rounds_per_run: int = 6,
    sweep_rounds: int = 2,
) -> ChannelResult:
    """Measure the completion-interrupt channel under ``tp``."""

    def run_once(bit: Hashable) -> Sequence[Hashable]:
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain(
            "Hi", n_colours=2, slice_cycles=_HI_SLICE, irq_lines=(_TROJAN_IRQ_LINE,)
        )
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=_LO_SLICE)
        switch_estimate = kernel.pad_wcet_estimate if tp.pad_switch else 800
        kernel.create_thread(
            hi,
            irq_trojan,
            params={
                "bit": bit,
                "lo_slice": _LO_SLICE,
                "hi_slice": _HI_SLICE,
                "switch_estimate": switch_estimate,
            },
        )
        results: List[int] = []
        # A quiet ReadTime-to-ReadTime step is ~a dozen cycles; even a
        # fully warm IRQ handler inserts several times that.
        gap_threshold = 4 * (
            machine.config.latency.readtime_cycles
            + machine.config.latency.base_cycles
            + machine.config.l1i_latency.hit_cycles
            + machine.config.latency.tlb_hit_cycles
        )
        kernel.create_thread(
            lo,
            gap_spy,
            params={
                "results": results,
                "rounds": rounds_per_run,
                "gap_threshold": gap_threshold,
                "sleep_cycles": _HI_SLICE // 2,
            },
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=rounds_per_run * 400_000)
        return results[1:] if len(results) > 1 else results

    return run_symbol_sweep(
        name="I/O completion interrupt channel",
        tp_label=_tp_label(tp),
        run_once=run_once,
        symbols=[0, 1],
        rounds=sweep_rounds,
    )

"""Bit/symbol codecs for covert-channel experiments."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def int_to_bits(value: int, width: int) -> List[int]:
    """Big-endian bit vector of ``value`` in ``width`` bits."""
    if width < 0:
        raise ValueError("width must be >= 0")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


def majority(values: Iterable[int]) -> int:
    """Majority vote over a sequence (ties break toward the smaller)."""
    counts = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        raise ValueError("majority of empty sequence")
    best = max(sorted(counts), key=lambda v: counts[v])
    return best


def hamming_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of positions that differ (compared up to common length)."""
    if not sent or not received:
        return 1.0
    compared = min(len(sent), len(received))
    errors = sum(
        1 for a, b in zip(sent[:compared], received[:compared]) if a != b
    )
    errors += abs(len(sent) - len(received))
    return errors / max(len(sent), len(received))

"""The top-level "proof" of time protection for a configured system.

This assembles the paper's whole argument (Sect. 5) into one executable
artefact.  Given a *system builder* -- a function that constructs, runs
and returns a complete system for a given Hi secret -- the prover:

1. extracts the abstract hardware model and checks aISA conformance
   (PO-1);
2. runs the system and discharges the mechanism obligations PO-2..PO-7
   from the run's evidence (touch logs, switch records, IRQ records);
3. audits the Sect. 5.2 case split over the captured step footprints;
4. checks the switch-boundary unwinding conditions for the observer;
5. runs the two-run secret-swap experiments and requires Lo's entire
   observation trace (values *and* timestamps) to be identical.

The theorem "time protection holds" is reported only when every part
passes; otherwise the report carries the failed obligations and concrete
counterexamples.  Two standing assumptions are always reported, mirroring
the paper's own scope: the stateless-interconnect exclusion (Sect. 2) and
the external origin of the padding value (WCET analysis, Sect. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from ..kernel.kernel import Kernel
from .absmodel import AbstractHardwareModel
from .casesplit import CaseSplitAudit, audit
from .noninterference import NonInterferenceResult, sweep_secrets
from .obligations import ObligationResult, check_all
from .unwinding import UnwindingCheck, check_unwinding

STANDING_ASSUMPTIONS = (
    "stateless-interconnect bandwidth channels are out of scope (Sect. 2); "
    "multicore runs may still interfere through bus contention",
    "padding values come from a separate worst-case analysis (Sect. 4.2); "
    "the proof validates the configured pad, it does not derive it",
)


@dataclass
class ProofReport:
    """Everything the prover established (or failed to)."""

    theorem: str
    holds: bool
    model_summary: dict
    obligations: List[ObligationResult]
    case_split: Optional[CaseSplitAudit]
    unwinding: Optional[UnwindingCheck]
    noninterference: List[NonInterferenceResult]
    assumptions: Sequence[str] = STANDING_ASSUMPTIONS
    notes: List[str] = field(default_factory=list)

    def failed_obligations(self) -> List[ObligationResult]:
        return [o for o in self.obligations if not o.passed]

    def counterexamples(self) -> List[str]:
        examples: List[str] = []
        for obligation in self.failed_obligations():
            examples.extend(obligation.violations[:3])
        for result in self.noninterference:
            if not result.holds and result.divergence is not None:
                examples.append(str(result.divergence))
        return examples


class TimeProtectionProof:
    """Prove (or refute) time protection for a system builder.

    Args:
        build_and_run: ``build_and_run(secret) -> Kernel`` -- constructs
            the complete system with the Hi secret set to ``secret``,
            runs it to completion, and returns the kernel.  The builder
            must be deterministic apart from the secret.
        secrets: the Hi secrets to sweep (>= 2).
        observer: the Lo domain whose observations must be invariant.
        capture_footprints: audit the Sect. 5.2 case split (slower).
    """

    def __init__(
        self,
        build_and_run: Callable[[Any], Kernel],
        secrets: Sequence[Any],
        observer: str,
        capture_footprints: bool = True,
    ):
        if len(secrets) < 2:
            raise ValueError("need at least two secrets")
        self.build_and_run = build_and_run
        self.secrets = list(secrets)
        self.observer = observer
        self.capture_footprints = capture_footprints

    def prove(self) -> ProofReport:
        """Run the full argument; returns the report."""
        reference = self._build(self.secrets[0])
        model = AbstractHardwareModel.from_machine(reference.machine)
        obligations = check_all(reference, model)
        case_split: Optional[CaseSplitAudit] = None
        if self.capture_footprints and reference.step_footprints:
            case_split = audit(reference)
        unwinding = (
            check_unwinding(reference, self.observer)
            if self.observer in reference.domains
            else None
        )
        noninterference = sweep_secrets(
            self._build, self.secrets, self.observer
        )
        holds = (
            all(o.passed for o in obligations)
            and (case_split is None or case_split.passed)
            and (unwinding is None or unwinding.passed)
            and all(r.holds for r in noninterference)
        )
        notes = []
        if not model.conforms_to_aisa():
            notes.append(
                "hardware does not conform to the aISA contract; the paper "
                "predicts the proof cannot go through on such hardware (Sect. 6)"
            )
        return ProofReport(
            theorem=(
                f"no execution of any domain can affect the timing or values "
                f"observable by domain {self.observer!r}"
            ),
            holds=holds,
            model_summary=model.summary(),
            obligations=obligations,
            case_split=case_split,
            unwinding=unwinding,
            noninterference=noninterference,
            notes=notes,
        )

    def _build(self, secret: Any) -> Kernel:
        kernel = self.build_and_run_with_footprints(secret)
        return kernel

    def build_and_run_with_footprints(self, secret: Any) -> Kernel:
        """Build via the user's builder; footprint capture is the builder's
        choice (the prover degrades gracefully if none were captured)."""
        return self.build_and_run(secret)


def prove_time_protection(
    build_and_run: Callable[[Any], Kernel],
    secrets: Sequence[Any],
    observer: str,
) -> ProofReport:
    """Convenience wrapper: construct the prover and run it."""
    prover = TimeProtectionProof(
        build_and_run=build_and_run, secrets=secrets, observer=observer
    )
    return prover.prove()

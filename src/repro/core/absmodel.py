"""The abstract microarchitectural model (Sect. 5.1).

"Proving temporal isolation requires formal models of microarchitectural
state, but these can be kept abstract, providing only detail to identify
resources that need to be partitioned (and how such partitioning is
performed), and state that must be reset (and how to reset it)."

The extraction below builds exactly that model from a concrete machine:
the full inventory of state elements, each classified by its *effective*
category -- a nominally flushable element that is concurrently shared
(SMT) or a nominally partitionable cache with a single colour degrade to
UNMANAGED, because the OS then has no mechanism for it.  The model also
names the machine's declared exclusions: the stateless interconnect's
bandwidth, which Sect. 2 of the paper explicitly scopes out.

Everything downstream -- the obligations, the case split, the
noninterference statement -- is phrased against this model, never against
the simulator's latency constants: that is the paper's central insight
made structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hardware.machine import Machine
from ..hardware.state import (
    InstrumentationMode,
    Scope,
    StateCategory,
    StateElement,
)


@dataclass(frozen=True)
class AbstractElement:
    """One state element as the proof sees it."""

    name: str
    declared_category: StateCategory
    effective_category: StateCategory
    scope: Scope
    concurrently_shared: bool
    n_partitions: int

    @property
    def is_managed(self) -> bool:
        return self.effective_category is not StateCategory.UNMANAGED


@dataclass
class AbstractHardwareModel:
    """The paper's microarchitectural model, extracted from a machine."""

    elements: List[AbstractElement]
    declared_exclusions: Tuple[str, ...] = (
        "interconnect-bandwidth (stateless interconnect; Sect. 2 scope exclusion)",
    )

    @classmethod
    def from_machine(cls, machine: Machine) -> "AbstractHardwareModel":
        if machine.instrumentation.mode is InstrumentationMode.COUNTING:
            raise ValueError(
                "cannot build proof obligations from a counting-mode "
                "machine: aggregate touch counts carry no per-index "
                "evidence; re-run with instrumentation='full'"
            )
        elements = []
        for element in machine.all_state_elements():
            elements.append(
                AbstractElement(
                    name=element.name,
                    declared_category=element.category,
                    effective_category=element.effective_category(),
                    scope=element.scope,
                    concurrently_shared=element.concurrently_shared,
                    n_partitions=element.n_partitions,
                )
            )
        return cls(elements=elements)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def partitionable(self) -> List[AbstractElement]:
        return [
            e
            for e in self.elements
            if e.effective_category is StateCategory.PARTITIONABLE
        ]

    def flushable(self) -> List[AbstractElement]:
        return [
            e
            for e in self.elements
            if e.effective_category is StateCategory.FLUSHABLE
        ]

    def unmanaged(self) -> List[AbstractElement]:
        return [
            e
            for e in self.elements
            if e.effective_category is StateCategory.UNMANAGED
        ]

    def element(self, name: str) -> AbstractElement:
        for candidate in self.elements:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no element {name!r} in the abstract model")

    def conforms_to_aisa(self) -> bool:
        """The aISA completeness condition: no unmanaged state.

        "In general, micro-architectural timing channels can be prevented
        if all shared hardware can be either partitioned or flushed by
        the OS, with flushing the only option where accesses are
        concurrent." (Sect. 4.1)
        """
        return not self.unmanaged()

    def summary(self) -> Dict[str, List[str]]:
        return {
            "partitionable": [e.name for e in self.partitionable()],
            "flushable": [e.name for e in self.flushable()],
            "unmanaged": [e.name for e in self.unmanaged()],
            "exclusions": list(self.declared_exclusions),
        }

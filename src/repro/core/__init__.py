"""The paper's primary contribution: the provability framework.

Implements Sect. 5 of the paper as executable artefacts: the abstract
microarchitectural model, the opaque time model with dependency-footprint
witnesses, the proof obligations (PO-1..PO-7), the Sect. 5.2 case split,
switch-boundary unwinding conditions, two-run noninterference
experiments, and the assembled top-level proof.
"""

from .absmodel import AbstractElement, AbstractHardwareModel
from .casesplit import CaseResult, CaseSplitAudit, audit
from .invariants import (
    Violation,
    check_colour_disjointness,
    check_kernel_image_disjointness,
    check_partition_touches,
    check_tlb_asid_isolation,
    check_way_quotas,
)
from .noninterference import (
    Divergence,
    NonInterferenceResult,
    batched_secret_swap,
    batched_secret_sweep,
    compare_finished_runs,
    secret_swap_experiment,
    sweep_secrets,
    trace_divergence,
)
from .obligations import (
    ObligationResult,
    check_all,
    po1_complete_management,
    po2_partitioning,
    po3_flush_on_switch,
    po4_constant_time_switch,
    po5_padding_sufficient,
    po6_interrupt_partitioning,
    po7_kernel_shared_determinism,
)
from .proof import (
    ProofReport,
    STANDING_ASSUMPTIONS,
    TimeProtectionProof,
    prove_time_protection,
)
from .report import format_report, format_report_json, proof_report_to_json
from .timefn import (
    ConfinementReport,
    FootprintEntry,
    TimeFunctionWitness,
    check_confinement,
    dependency_profile,
    witnesses_from_kernel,
)
from .unwinding import UnwindingCheck, check_unwinding, lo_projection

__all__ = [
    "AbstractElement",
    "AbstractHardwareModel",
    "CaseResult",
    "CaseSplitAudit",
    "ConfinementReport",
    "Divergence",
    "FootprintEntry",
    "NonInterferenceResult",
    "ObligationResult",
    "ProofReport",
    "STANDING_ASSUMPTIONS",
    "TimeFunctionWitness",
    "TimeProtectionProof",
    "UnwindingCheck",
    "Violation",
    "audit",
    "check_all",
    "check_colour_disjointness",
    "check_confinement",
    "check_kernel_image_disjointness",
    "check_partition_touches",
    "check_tlb_asid_isolation",
    "check_way_quotas",
    "check_unwinding",
    "dependency_profile",
    "format_report",
    "format_report_json",
    "proof_report_to_json",
    "lo_projection",
    "po1_complete_management",
    "po2_partitioning",
    "po3_flush_on_switch",
    "po4_constant_time_switch",
    "po5_padding_sufficient",
    "po6_interrupt_partitioning",
    "po7_kernel_shared_determinism",
    "prove_time_protection",
    "batched_secret_swap",
    "batched_secret_sweep",
    "compare_finished_runs",
    "secret_swap_experiment",
    "sweep_secrets",
    "trace_divergence",
    "witnesses_from_kernel",
]

"""The proof obligations of time protection, as executable checks.

Sect. 5.2: "the proofs must show that all resource partitioning and
flushing is applied at all times and not bypassable, and that
domain-switches (flushing) is correctly padded to a constant amount of
time".  Together with the hardware-contract completeness condition of
Sect. 4.1 and the kernel-determinism condition of Case 2a, that yields
seven obligations:

========  =====================================================
PO-1      Complete management: every state element partitionable
          or flushable (aISA conformance).
PO-2      Partitioning invariant: allocations disjoint and every
          recorded touch inside the toucher's partition.
PO-3      Flush applied on every domain switch, and it actually
          resets the state (post-flush fingerprint == reset).
PO-4      Constant-time switch: released - scheduled equals the
          switched-from domain's pad, every time.
PO-5      Padding sufficiency: the flush+work never overran the
          pad target.
PO-6      Interrupt partitioning: no interrupt delivered while a
          non-owner domain runs.
PO-7      Kernel-shared-state determinism: the LLC contents of
          the kernel's reserved colours are identical at every
          switch release (Case 2a's "accessed deterministically
          ... independent of prior Hi activity").
========  =====================================================

An obligation that fails carries counterexamples -- the executable
analogue of a failed proof goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..kernel.kernel import Kernel
from .absmodel import AbstractHardwareModel
from .invariants import (
    Violation,
    check_colour_disjointness,
    check_kernel_image_disjointness,
    check_partition_touches,
    check_tlb_asid_isolation,
    check_way_quotas,
)


@dataclass
class ObligationResult:
    """Outcome of checking one proof obligation."""

    obligation_id: str
    title: str
    passed: bool
    violations: List[str] = field(default_factory=list)
    details: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        head = f"{self.obligation_id} [{status}] {self.title}"
        if self.violations:
            shown = self.violations[:5]
            body = "\n".join(f"    - {v}" for v in shown)
            if len(self.violations) > 5:
                body += f"\n    ... and {len(self.violations) - 5} more"
            return f"{head}\n{body}"
        return head


def po1_complete_management(model: AbstractHardwareModel) -> ObligationResult:
    """PO-1: all microarchitectural state is partitionable or flushable."""
    unmanaged = model.unmanaged()
    return ObligationResult(
        obligation_id="PO-1",
        title="all microarchitectural state partitionable or flushable (aISA)",
        passed=not unmanaged,
        violations=[
            f"{e.name}: declared {e.declared_category.value}, effectively "
            f"unmanaged ("
            + (
                "concurrently shared"
                if e.concurrently_shared and e.scope.value == "core_local"
                else "no mechanism"
            )
            + ")"
            for e in unmanaged
        ],
        details=f"{len(model.elements)} elements inspected",
    )


def po2_partitioning(kernel: Kernel) -> ObligationResult:
    """PO-2: allocations disjoint; every touch within its partition."""
    violations: List[Violation] = []
    violations += check_colour_disjointness(kernel)
    violations += check_kernel_image_disjointness(kernel)
    violations += check_partition_touches(kernel)
    violations += check_way_quotas(kernel)
    violations += check_tlb_asid_isolation(kernel)
    return ObligationResult(
        obligation_id="PO-2",
        title="partitioning invariant holds at all times",
        passed=not violations,
        violations=[str(v) for v in violations],
    )


def po3_flush_on_switch(kernel: Kernel) -> ObligationResult:
    """PO-3: every domain switch flushes all flushables to reset state."""
    violations: List[str] = []
    records = kernel.switch_records
    if not kernel.tp.flush_on_switch:
        if records:
            violations.append(
                f"flush_on_switch disabled; {len(records)} unflushed domain switches"
            )
    for number, record in enumerate(records):
        expected = {
            element.name
            for element in kernel.machine.flushable_elements_of_core(record.core_id)
        }
        flushed = set(record.flushed_elements)
        missing = expected - flushed
        if missing:
            violations.append(
                f"switch #{number} ({record.from_domain}->{record.to_domain}): "
                f"elements not flushed: {sorted(missing)}"
            )
        for name in sorted(flushed):
            if record.post_flush_fingerprints.get(name) != record.reset_fingerprints.get(name):
                violations.append(
                    f"switch #{number}: flush of {name} did not reach reset state"
                )
    return ObligationResult(
        obligation_id="PO-3",
        title="flush applied on every domain switch and actually resets",
        passed=not violations,
        violations=violations,
        details=f"{len(records)} switches audited",
    )


def po4_constant_time_switch(kernel: Kernel) -> ObligationResult:
    """PO-4: switch latency is a per-domain constant (timestamp compare)."""
    violations: List[str] = []
    records = kernel.switch_records
    if not kernel.tp.pad_switch:
        latencies = {record.switch_latency for record in records}
        if len(latencies) > 1:
            violations.append(
                f"padding disabled; switch latencies vary: "
                f"{sorted(latencies)[:8]}{'...' if len(latencies) > 8 else ''}"
            )
    for number, record in enumerate(records):
        if record.pad_target is None:
            continue
        expected = kernel.domains[record.from_domain].pad_cycles
        actual = record.released_at - record.scheduled_at
        if actual != expected:
            violations.append(
                f"switch #{number} ({record.from_domain}->{record.to_domain}): "
                f"latency {actual} != pad {expected}"
            )
    return ObligationResult(
        obligation_id="PO-4",
        title="domain-switch latency padded to a per-domain constant",
        passed=not violations,
        violations=violations,
        details=f"{len(records)} switches audited",
    )


def po5_padding_sufficient(kernel: Kernel) -> ObligationResult:
    """PO-5: the pad always covered the actual flush+work latency."""
    violations: List[str] = []
    if not kernel.tp.pad_switch:
        violations.append("padding disabled: nothing bounds the switch latency")
    for number, record in enumerate(kernel.switch_records):
        if record.overrun:
            violations.append(
                f"switch #{number} ({record.from_domain}->{record.to_domain}): "
                f"work finished at {record.finished_at} > pad target {record.pad_target}"
            )
    return ObligationResult(
        obligation_id="PO-5",
        title="padding value sufficient (no overruns observed)",
        passed=not violations,
        violations=violations,
        details=(
            f"WCET estimate {kernel.pad_wcet_estimate} cycles; "
            f"{len(kernel.switch_records)} switches audited"
        ),
    )


def po6_interrupt_partitioning(kernel: Kernel) -> ObligationResult:
    """PO-6: interrupts only delivered to their owner domain."""
    violations: List[str] = []
    if not kernel.tp.partition_interrupts and kernel.irq_deliveries:
        violations.append(
            f"interrupt partitioning disabled; "
            f"{len(kernel.irq_deliveries)} unpartitioned deliveries"
        )
    for record in kernel.irq_deliveries:
        if record.owner_domain is None:
            continue
        if record.running_domain != record.owner_domain:
            violations.append(
                f"IRQ {record.line} (owner {record.owner_domain}) delivered at "
                f"{record.delivered_at} while {record.running_domain} was running"
            )
    return ObligationResult(
        obligation_id="PO-6",
        title="interrupts partitioned: non-owner domains never interrupted",
        passed=not violations,
        violations=violations,
        details=f"{len(kernel.irq_deliveries)} deliveries audited",
    )


def po7_kernel_shared_determinism(kernel: Kernel) -> ObligationResult:
    """PO-7: kernel-shared LLC state is the canonical post-sweep state.

    Two conditions, both required (Case 2a of Sect. 5.2):

    * at every switch release the kernel-shared colours hold *only* lines
      of the global kernel data region -- the lines the deterministic
      normalisation sweep itself installs.  Anything else (e.g. master
      kernel-text lines left by a domain's syscalls when cloning is off)
      is history-dependent residue;
    * the snapshot is identical across all switches.
    """
    violations: List[str] = []
    kernel_colours = sorted(kernel.allocator.kernel_colours)
    records = [r for r in kernel.switch_records if r.llc_colour_fingerprints]
    if kernel.tp.cache_colouring and not kernel_colours and len(kernel.domains) > 1:
        violations.append("no reserved kernel colour: shared kernel state unpartitioned")
    llc = kernel.machine.llc
    allowed_tags = {llc.geometry.tag(paddr) for paddr in kernel.kernel_data_paddrs}
    reference: Optional[Dict[int, tuple]] = None
    for number, record in enumerate(records):
        snapshot = {
            colour: record.llc_colour_fingerprints.get(colour, ())
            for colour in kernel_colours
        }
        for colour in kernel_colours:
            resident = {
                tag for _set, tags in snapshot[colour] for tag in tags
            }
            foreign = resident - allowed_tags
            if foreign:
                violations.append(
                    f"switch #{number}: kernel colour {colour} holds "
                    f"{len(foreign)} non-sweep lines (history-dependent residue)"
                )
                break
        if reference is None:
            reference = snapshot
            continue
        for colour in kernel_colours:
            if snapshot[colour] != reference[colour]:
                violations.append(
                    f"switch #{number}: kernel colour {colour} LLC state differs "
                    f"from the first switch (history-dependent shared kernel state)"
                )
                break
    return ObligationResult(
        obligation_id="PO-7",
        title="shared kernel state deterministic at every switch release",
        passed=not violations,
        violations=violations,
        details=f"{len(records)} fingerprinted switches, colours {kernel_colours}",
    )


def check_all(kernel: Kernel, model: Optional[AbstractHardwareModel] = None) -> List[ObligationResult]:
    """Discharge every obligation against one (already-run) kernel."""
    if model is None:
        model = AbstractHardwareModel.from_machine(kernel.machine)
    return [
        po1_complete_management(model),
        po2_partitioning(kernel),
        po3_flush_on_switch(kernel),
        po4_constant_time_switch(kernel),
        po5_padding_sufficient(kernel),
        po6_interrupt_partitioning(kernel),
        po7_kernel_shared_determinism(kernel),
    ]

"""Two-run noninterference experiments (secret swap).

The property the paper ultimately wants to prove (Sect. 5.2) is that
"there is no way in which the execution of one domain can affect the
execution timing of another domain" -- a noninterference statement in the
style of Murray et al. [2012], with elapsed time reflected as a value in
the state so that "timing-channel reasoning is reduced to storage-channel
reasoning".

The executable counterpart is the classic two-run formulation: build the
*entire system* twice, identical in every respect except the Hi domain's
secret (or the Trojan's input), run both, and compare the Lo domain's
complete observation trace -- every architectural value Lo ever reads,
including every timestamp.  If any observation differs, we have a
concrete witness of interference (and, via the channel analysis in
``repro.analysis``, usually a measurable channel); if the traces are
bit-identical for all secret pairs tried, the unwinding-style evidence
of :mod:`repro.core.unwinding` explains *why*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..kernel.kernel import Kernel


@dataclass
class Divergence:
    """First point at which two Lo traces differ."""

    index: int
    observation_a: Optional[Tuple]
    observation_b: Optional[Tuple]

    def __str__(self) -> str:
        return (
            f"first divergence at observation #{self.index}: "
            f"{self.observation_a!r} vs {self.observation_b!r}"
        )


@dataclass
class NonInterferenceResult:
    """Outcome of one secret-swap experiment."""

    observer_domain: str
    secret_a: Any
    secret_b: Any
    holds: bool
    trace_length_a: int
    trace_length_b: int
    divergence: Optional[Divergence] = None
    hardware_divergences: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "HOLDS" if self.holds else "VIOLATED"
        base = (
            f"noninterference({self.observer_domain}) {status} for secrets "
            f"{self.secret_a!r} vs {self.secret_b!r} "
            f"({self.trace_length_a}/{self.trace_length_b} observations)"
        )
        if self.divergence is not None:
            base += f"\n  {self.divergence}"
        for item in self.hardware_divergences[:3]:
            base += f"\n  hw: {item}"
        return base


def trace_divergence(
    trace_a: Sequence[Tuple], trace_b: Sequence[Tuple]
) -> Optional[Divergence]:
    """First index where two observation traces differ, if any."""
    for index, (obs_a, obs_b) in enumerate(zip(trace_a, trace_b)):
        if obs_a != obs_b:
            return Divergence(index=index, observation_a=obs_a, observation_b=obs_b)
    if len(trace_a) != len(trace_b):
        shorter = min(len(trace_a), len(trace_b))
        longer_trace = trace_a if len(trace_a) > len(trace_b) else trace_b
        return Divergence(
            index=shorter,
            observation_a=trace_a[shorter] if shorter < len(trace_a) else None,
            observation_b=trace_b[shorter] if shorter < len(trace_b) else None,
        ) if longer_trace else None
    return None


def _lo_switch_evidence(kernel: Kernel, observer: str) -> List[Tuple]:
    """Lo-relevant snapshots at each switch into the observer domain.

    The LLC projection follows the active partitioning mechanism: the
    observer's page colours under colouring, its way-quota lines (plus
    the normalised kernel share) under CAT-style way partitioning.
    """
    evidence = []
    observer_domain = kernel.domains.get(observer)
    observer_colours = (
        sorted(observer_domain.colours) if observer_domain is not None else []
    )
    way_partitioned = kernel.tp.way_partitioning
    for record in kernel.switch_records:
        if record.to_domain != observer:
            continue
        if way_partitioned:
            lo_llc = tuple(
                (owner, record.llc_owner_fingerprints.get(owner, ()))
                for owner in (observer, "@kernel")
            )
        else:
            lo_llc = tuple(
                (colour, record.llc_colour_fingerprints.get(colour, ()))
                for colour in observer_colours
            )
        evidence.append(
            (record.released_at, tuple(sorted(record.post_flush_fingerprints)), lo_llc)
        )
    return evidence


def compare_finished_runs(
    kernel_a: Kernel,
    kernel_b: Kernel,
    secret_a: Any,
    secret_b: Any,
    observer_domain: str,
    compare_hardware: bool = True,
) -> NonInterferenceResult:
    """Compare Lo's world across two already-run kernels.

    The comparison half of :func:`secret_swap_experiment`, factored out
    so the batched sweep (all lanes stepped by one lockstep run) and the
    scalar two-run path judge divergence with the same code.
    """
    trace_a = kernel_a.observation_trace(observer_domain)
    trace_b = kernel_b.observation_trace(observer_domain)
    divergence = trace_divergence(trace_a, trace_b)
    hardware_divergences: List[str] = []
    if compare_hardware:
        evidence_a = _lo_switch_evidence(kernel_a, observer_domain)
        evidence_b = _lo_switch_evidence(kernel_b, observer_domain)
        for index, (entry_a, entry_b) in enumerate(zip(evidence_a, evidence_b)):
            if entry_a != entry_b:
                hardware_divergences.append(
                    f"switch-into-{observer_domain} #{index}: Lo-visible hardware "
                    f"state differs (release {entry_a[0]} vs {entry_b[0]})"
                )
    return NonInterferenceResult(
        observer_domain=observer_domain,
        secret_a=secret_a,
        secret_b=secret_b,
        holds=divergence is None and not hardware_divergences,
        trace_length_a=len(trace_a),
        trace_length_b=len(trace_b),
        divergence=divergence,
        hardware_divergences=hardware_divergences,
    )


def secret_swap_experiment(
    build_and_run: Callable[[Any], Kernel],
    secret_a: Any,
    secret_b: Any,
    observer_domain: str,
    compare_hardware: bool = True,
) -> NonInterferenceResult:
    """Run the system under two secrets and compare Lo's world.

    ``build_and_run(secret)`` must construct the *whole* system from
    scratch (machine, kernel, domains, threads, schedule), run it, and
    return the kernel.  Determinism of the builder (fixed seeds, fixed
    creation order) is the caller's responsibility; everything in the
    simulator itself is deterministic.
    """
    kernel_a = build_and_run(secret_a)
    kernel_b = build_and_run(secret_b)
    return compare_finished_runs(
        kernel_a, kernel_b, secret_a, secret_b, observer_domain,
        compare_hardware=compare_hardware,
    )


def sweep_secrets(
    build_and_run: Callable[[Any], Kernel],
    secrets: Sequence[Any],
    observer_domain: str,
) -> List[NonInterferenceResult]:
    """Pairwise secret-swap against the first secret as the baseline."""
    if len(secrets) < 2:
        raise ValueError("need at least two secrets to compare")
    baseline = secrets[0]
    return [
        secret_swap_experiment(build_and_run, baseline, other, observer_domain)
        for other in secrets[1:]
    ]


def batched_secret_swap(
    build: Callable[[Any], Kernel],
    secret_a: Any,
    secret_b: Any,
    observer_domain: str,
    max_cycles: int,
    compare_hardware: bool = True,
) -> NonInterferenceResult:
    """Two-run secret swap with both runs stepped as one lockstep batch."""
    return batched_secret_sweep(
        build, (secret_a, secret_b), observer_domain, max_cycles,
        compare_hardware=compare_hardware,
    )[0]


def batched_secret_sweep(
    build: Callable[[Any], Kernel],
    secrets: Sequence[Any],
    observer_domain: str,
    max_cycles: int,
    compare_hardware: bool = True,
    on_kernel: Optional[Callable[[Kernel], None]] = None,
) -> List[NonInterferenceResult]:
    """Pairwise secret-swap with *all* runs stepped as one batch.

    ``build(secret)`` constructs the whole system exactly like
    :func:`secret_swap_experiment`'s builder but must NOT run it; this
    sweep boots one lane per secret and steps every lane in lockstep
    through the vectorized batch engine, then compares each lane against
    the ``secrets[0]`` baseline lane.  With a deterministic builder the
    verdicts are bit-identical to :func:`sweep_secrets` (the baseline is
    built once instead of once per pair -- the builds are equal).

    Workloads outside the batch envelope fall back to scalar runs of
    freshly built systems, so callers never see
    :class:`~repro.hardware.batch.BatchUnsupported`.
    """
    from ..hardware.batch import BatchUnsupported, run_lockstep
    from ..hardware.machine import engine_override

    if len(secrets) < 2:
        raise ValueError("need at least two secrets to compare")
    kernels = [build(secret) for secret in secrets]
    # The verdict only ever reads the observer's LLC colours
    # (:func:`_lo_switch_evidence`), so the lockstep run records switch
    # fingerprints for exactly those colours -- a large saving on
    # many-colour machines, invisible in the returned results.
    observer = kernels[0].domains.get(observer_domain)
    trim = (
        frozenset(observer.colours)
        if observer is not None and not kernels[0].tp.way_partitioning
        else None
    )
    try:
        run_lockstep(
            kernels, max_cycles, llc_fingerprint_colours=trim
        )
    except BatchUnsupported:
        # Rebuild from scratch: a mid-run envelope exit (e.g. a recv
        # syscall) leaves lanes partially stepped, and the fresh builds
        # must resolve to the scalar engine even under an override.
        with engine_override("scalar"):
            kernels = []
            for secret in secrets:
                kernel = build(secret)
                kernel.run(max_cycles=max_cycles)
                kernels.append(kernel)
    if on_kernel is not None:
        # Same hook the experiment runners expose (bench step
        # accounting); called once per finished lane, in lane order.
        for kernel in kernels:
            on_kernel(kernel)
    baseline = kernels[0]
    return [
        compare_finished_runs(
            baseline, kernels[index], secrets[0], secrets[index],
            observer_domain, compare_hardware=compare_hardware,
        )
        for index in range(1, len(kernels))
    ]

"""The abstract time model: latency as an opaque function of state.

Sect. 5.1: "the time model, which captures how far time advances on each
execution step, is defined as a deterministic yet unspecified function of
the microarchitectural state."  The proof never evaluates this function;
it only needs to know its *argument list* -- which state elements (and
which indices within them) a step's latency reads.

The simulator records exactly that: with footprint capture enabled
(``Kernel.capture_footprints``), every executed step stores the ordered
list of (element, index, kind) touches its latency computation consulted.
:class:`TimeFunctionWitness` wraps one such footprint and can answer the
question at the heart of Case 1 of the proof (Sect. 5.2): *is every
argument of this step's latency function confined to state the executing
domain is entitled to?*  If yes for every step, the unspecified function
-- whatever it is -- cannot transmit information across the partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hardware.state import StateCategory
from ..kernel.kernel import Kernel


@dataclass
class FootprintEntry:
    element: str
    index: object
    kind: str


@dataclass
class TimeFunctionWitness:
    """One step's latency-dependency footprint, classified."""

    case: str  # "1", "2a" or "2b"
    context: str  # domain name or switch tag
    entries: Tuple[FootprintEntry, ...]

    def elements_touched(self) -> Set[str]:
        return {entry.element for entry in self.entries}


@dataclass
class ConfinementReport:
    """Whether every latency argument was confined to entitled state."""

    total_steps: int
    confined_steps: int
    violations: List[str] = field(default_factory=list)

    @property
    def confined(self) -> bool:
        return not self.violations


def witnesses_from_kernel(kernel: Kernel) -> List[TimeFunctionWitness]:
    """Wrap the kernel's captured footprints as witnesses."""
    witnesses = []
    for case, context, footprint in kernel.step_footprints:
        entries = tuple(
            FootprintEntry(element=element, index=index, kind=kind.value)
            for element, index, kind in footprint
        )
        witnesses.append(
            TimeFunctionWitness(case=case, context=context, entries=entries)
        )
    return witnesses


def check_confinement(
    kernel: Kernel, witnesses: Optional[Sequence[TimeFunctionWitness]] = None
) -> ConfinementReport:
    """Case 1/2a argument: latency arguments stay in entitled state.

    For every captured step, each partitionable-element touch must lie in
    a colour the step's context is entitled to (its domain's colours,
    plus the kernel's shared colours for trap handling and switches).
    Flushable-element touches are always entitled: they are core-local
    and reset at every domain boundary, so their state is a function of
    the current domain's own history.
    """
    if witnesses is None:
        witnesses = witnesses_from_kernel(kernel)
    elements = {e.name: e for e in kernel.machine.all_state_elements()}
    kernel_colours = set(kernel.allocator.kernel_colours)
    violations: List[str] = []
    confined = 0
    for number, witness in enumerate(witnesses):
        entitled = _entitled_colours(kernel, witness, kernel_colours)
        step_ok = True
        for entry in witness.entries:
            element = elements.get(entry.element)
            if element is None or element.category is not StateCategory.PARTITIONABLE:
                continue
            if entitled is None:
                continue
            colour = element.partition_of_index(entry.index)
            if colour not in entitled:
                step_ok = False
                violations.append(
                    f"step #{number} (case {witness.case}, {witness.context}): "
                    f"latency depends on {entry.element} colour {colour}, "
                    f"entitled {sorted(entitled)}"
                )
                break
        if step_ok:
            confined += 1
    return ConfinementReport(
        total_steps=len(witnesses),
        confined_steps=confined,
        violations=violations,
    )


def _entitled_colours(
    kernel: Kernel, witness: TimeFunctionWitness, kernel_colours: Set[int]
) -> Optional[Set[int]]:
    if not kernel.tp.cache_colouring:
        return None
    if witness.case == "2b":
        tag = witness.context[len("@switch:"):]
        from_name, _, to_name = tag.partition(">")
        entitled = set(kernel_colours)
        for name in (from_name, to_name):
            domain = kernel.domains.get(name)
            if domain is not None:
                entitled |= domain.colours
        return entitled
    domain = kernel.domains.get(witness.context)
    if domain is None:
        return None
    entitled = set(domain.colours)
    if witness.case == "2a":
        entitled |= kernel_colours
    return entitled


def dependency_profile(
    witnesses: Sequence[TimeFunctionWitness],
) -> Dict[str, Dict[str, int]]:
    """How often each case's latency reads each element (for reports)."""
    profile: Dict[str, Dict[str, int]] = {}
    for witness in witnesses:
        bucket = profile.setdefault(witness.case, {})
        for element in sorted(witness.elements_touched()):
            bucket[element] = bucket.get(element, 0) + 1
    return profile

"""Human-readable rendering of proof and conformance reports.

The obligation-list helpers are shared between the runtime proof report
and the static conformance report (``repro.statcheck``), so both read
the same way: a banner, ``XX-n [PASS|FAIL] title`` lines, indented
counterexamples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .proof import ProofReport

_RULE = "=" * 72


def banner(title: str) -> str:
    return "\n".join([_RULE, title, _RULE])


def indent_block(item: object, indent: str = "  ") -> str:
    """Render ``item`` (via ``str``) indented one level, multi-line safe."""
    return indent + str(item).replace("\n", "\n" + indent)


def format_obligation_block(
    title: str,
    results: Sequence[object],
    notes: Iterable[str] = (),
) -> str:
    """A banner, one indented entry per obligation result, then notes."""
    lines = [banner(title)]
    for result in results:
        lines.append(indent_block(result))
    for note in notes:
        lines.append(f"  ! {note}")
    lines.append(_RULE)
    return "\n".join(lines)


def format_report(report: ProofReport, verbose: bool = False) -> str:
    """Render a :class:`ProofReport` as a plain-text document."""
    lines = []
    verdict = "THEOREM HOLDS" if report.holds else "THEOREM FAILS"
    lines.append(banner("TIME PROTECTION PROOF REPORT"))
    lines.append(f"Theorem: {report.theorem}")
    lines.append(f"Verdict: {verdict}")
    lines.append("")
    lines.append("Abstract hardware model:")
    for key in ("partitionable", "flushable", "unmanaged"):
        names = report.model_summary.get(key, [])
        lines.append(f"  {key:14s} ({len(names)}): {', '.join(names) or '-'}")
    lines.append("")
    lines.append("Proof obligations:")
    for obligation in report.obligations:
        lines.append(indent_block(obligation))
    if report.case_split is not None:
        lines.append("")
        lines.append("Case split (Sect. 5.2):")
        lines.append(indent_block(report.case_split))
    if report.unwinding is not None:
        lines.append("")
        lines.append("Unwinding conditions:")
        lines.append(indent_block(report.unwinding))
    lines.append("")
    lines.append("Noninterference (two-run secret swap):")
    for result in report.noninterference:
        lines.append(indent_block(result))
    lines.append("")
    lines.append("Standing assumptions:")
    for assumption in report.assumptions:
        lines.append(f"  * {assumption}")
    for note in report.notes:
        lines.append(f"  ! {note}")
    if verbose and not report.holds:
        lines.append("")
        lines.append("Counterexamples:")
        for example in report.counterexamples():
            lines.append(f"  - {example}")
    lines.append(_RULE)
    return "\n".join(lines)

"""Human-readable rendering of proof reports."""

from __future__ import annotations

from .proof import ProofReport


def format_report(report: ProofReport, verbose: bool = False) -> str:
    """Render a :class:`ProofReport` as a plain-text document."""
    lines = []
    verdict = "THEOREM HOLDS" if report.holds else "THEOREM FAILS"
    lines.append("=" * 72)
    lines.append("TIME PROTECTION PROOF REPORT")
    lines.append("=" * 72)
    lines.append(f"Theorem: {report.theorem}")
    lines.append(f"Verdict: {verdict}")
    lines.append("")
    lines.append("Abstract hardware model:")
    for key in ("partitionable", "flushable", "unmanaged"):
        names = report.model_summary.get(key, [])
        lines.append(f"  {key:14s} ({len(names)}): {', '.join(names) or '-'}")
    lines.append("")
    lines.append("Proof obligations:")
    for obligation in report.obligations:
        lines.append("  " + str(obligation).replace("\n", "\n  "))
    if report.case_split is not None:
        lines.append("")
        lines.append("Case split (Sect. 5.2):")
        lines.append("  " + str(report.case_split).replace("\n", "\n  "))
    if report.unwinding is not None:
        lines.append("")
        lines.append("Unwinding conditions:")
        lines.append("  " + str(report.unwinding).replace("\n", "\n  "))
    lines.append("")
    lines.append("Noninterference (two-run secret swap):")
    for result in report.noninterference:
        lines.append("  " + str(result).replace("\n", "\n  "))
    lines.append("")
    lines.append("Standing assumptions:")
    for assumption in report.assumptions:
        lines.append(f"  * {assumption}")
    for note in report.notes:
        lines.append(f"  ! {note}")
    if verbose and not report.holds:
        lines.append("")
        lines.append("Counterexamples:")
        for example in report.counterexamples():
            lines.append(f"  - {example}")
    lines.append("=" * 72)
    return "\n".join(lines)

"""Human-readable rendering of proof and conformance reports.

The obligation-list helpers are shared between the runtime proof report
and the static conformance report (``repro.statcheck``), so both read
the same way: a banner, ``XX-n [PASS|FAIL] title`` lines, indented
counterexamples.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .proof import ProofReport

_RULE = "=" * 72


def banner(title: str) -> str:
    return "\n".join([_RULE, title, _RULE])


def indent_block(item: object, indent: str = "  ") -> str:
    """Render ``item`` (via ``str``) indented one level, multi-line safe."""
    return indent + str(item).replace("\n", "\n" + indent)


def format_obligation_block(
    title: str,
    results: Sequence[object],
    notes: Iterable[str] = (),
) -> str:
    """A banner, one indented entry per obligation result, then notes."""
    lines = [banner(title)]
    for result in results:
        lines.append(indent_block(result))
    for note in notes:
        lines.append(f"  ! {note}")
    lines.append(_RULE)
    return "\n".join(lines)


def format_report(report: ProofReport, verbose: bool = False) -> str:
    """Render a :class:`ProofReport` as a plain-text document."""
    lines = []
    verdict = "THEOREM HOLDS" if report.holds else "THEOREM FAILS"
    lines.append(banner("TIME PROTECTION PROOF REPORT"))
    lines.append(f"Theorem: {report.theorem}")
    lines.append(f"Verdict: {verdict}")
    lines.append("")
    lines.append("Abstract hardware model:")
    for key in ("partitionable", "flushable", "unmanaged"):
        names = report.model_summary.get(key, [])
        lines.append(f"  {key:14s} ({len(names)}): {', '.join(names) or '-'}")
    lines.append("")
    lines.append("Proof obligations:")
    for obligation in report.obligations:
        lines.append(indent_block(obligation))
    if report.case_split is not None:
        lines.append("")
        lines.append("Case split (Sect. 5.2):")
        lines.append(indent_block(report.case_split))
    if report.unwinding is not None:
        lines.append("")
        lines.append("Unwinding conditions:")
        lines.append(indent_block(report.unwinding))
    lines.append("")
    lines.append("Noninterference (two-run secret swap):")
    for result in report.noninterference:
        lines.append(indent_block(result))
    lines.append("")
    lines.append("Standing assumptions:")
    for assumption in report.assumptions:
        lines.append(f"  * {assumption}")
    for note in report.notes:
        lines.append(f"  ! {note}")
    if verbose and not report.holds:
        lines.append("")
        lines.append("Counterexamples:")
        for example in report.counterexamples():
            lines.append(f"  - {example}")
    lines.append(_RULE)
    return "\n".join(lines)


def proof_report_to_json(report: ProofReport) -> dict:
    """A :class:`ProofReport` as one JSON-serializable document.

    Everything in the text rendering is here, plus the machine-readable
    detail the text elides (full violation lists, per-case step counts),
    so downstream tooling never needs to parse the banner format.
    """
    case_split = None
    if report.case_split is not None:
        case_split = {
            "passed": report.case_split.passed,
            "total_steps": report.case_split.total_steps,
            "cases": [
                {
                    "case": result.case,
                    "description": result.description,
                    "steps": result.steps,
                    "passed": result.passed,
                    "failures": list(result.failures),
                }
                for result in report.case_split.results
            ],
        }
    unwinding = None
    if report.unwinding is not None:
        unwinding = {
            "observer_domain": report.unwinding.observer_domain,
            "passed": report.unwinding.passed,
            "switches_into_observer": report.unwinding.switches_into_observer,
            "failures": list(report.unwinding.failures),
        }
    return {
        "theorem": report.theorem,
        "holds": report.holds,
        "model_summary": report.model_summary,
        "obligations": [
            {
                "obligation_id": obligation.obligation_id,
                "title": obligation.title,
                "passed": obligation.passed,
                "violations": list(obligation.violations),
                "details": obligation.details,
            }
            for obligation in report.obligations
        ],
        "case_split": case_split,
        "unwinding": unwinding,
        "noninterference": [
            {
                "observer_domain": result.observer_domain,
                "secret_a": result.secret_a,
                "secret_b": result.secret_b,
                "holds": result.holds,
                "trace_length_a": result.trace_length_a,
                "trace_length_b": result.trace_length_b,
                "divergence": None if result.divergence is None else {
                    "index": result.divergence.index,
                    "observation_a": result.divergence.observation_a,
                    "observation_b": result.divergence.observation_b,
                },
                "hardware_divergences": list(result.hardware_divergences),
            }
            for result in report.noninterference
        ],
        "assumptions": list(report.assumptions),
        "notes": list(report.notes),
        "counterexamples": report.counterexamples(),
    }


def format_report_json(report: ProofReport) -> str:
    """Stable JSON rendering of a :class:`ProofReport`."""
    return json.dumps(proof_report_to_json(report), indent=2, sort_keys=True)

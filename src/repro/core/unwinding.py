"""Unwinding-style conditions at domain-switch boundaries.

Murray et al. [2012] prove noninterference for OS kernels via *unwinding
conditions*: per-step lemmas showing that states equivalent from Lo's
perspective remain equivalent.  A full per-instruction unwinding over the
concrete simulator would drown in irrelevant detail -- exactly the
situation the paper says to avoid by abstraction (Sect. 5.1/5.3).  We
instead check the conditions at the points where control (and therefore
observability) passes between domains: every switch *into* the observer
domain.

At each such point, the Lo-relevant projection of the machine state is:

* the release timestamp (Case 2b: must equal schedule + pad, a constant),
* the flushable state (must be in reset state -- history-independent),
* the LLC restricted to Lo's own colours (only Lo writes there),
* the LLC restricted to the kernel's shared colours (must be the
  canonical post-sweep state).

If each of these is (a) constant where the proof says constant and (b)
dependent only on Lo-and-kernel history otherwise, then by the paper's
Case 1/2a argument every subsequent Lo step's latency is a function of
Lo-visible state only -- the unwinding step.  The checker verifies (a)
directly and provides the projections so the two-run harness can verify
(b) across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..kernel.kernel import Kernel


@dataclass
class UnwindingCheck:
    """Result of checking unwinding conditions for one observer domain."""

    observer_domain: str
    passed: bool
    failures: List[str] = field(default_factory=list)
    switches_into_observer: int = 0

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        head = (
            f"unwinding({self.observer_domain}) [{status}] over "
            f"{self.switches_into_observer} entry points"
        )
        if self.failures:
            head += "\n" + "\n".join(f"    - {f}" for f in self.failures[:5])
        return head


def projection_entry(
    record,
    observer: str,
    colours: List[int],
    kernel_colours: List[int],
    way_partitioned: bool,
) -> Optional[Tuple]:
    """One switch record's Lo-projection entry; None for other targets.

    The per-record building block of :func:`lo_projection`, exposed so
    incremental consumers (the model checker's cursor mode) can extend
    a cached projection one record at a time with identical entries.
    """
    if record.to_domain != observer:
        return None
    if way_partitioned:
        own_view = tuple(
            (observer, record.llc_owner_fingerprints.get(observer, ()))
        )
        kernel_view = tuple(
            ("@kernel", record.llc_owner_fingerprints.get("@kernel", ()))
        )
    else:
        own_view = tuple(
            (colour, record.llc_colour_fingerprints.get(colour, ()))
            for colour in colours
        )
        kernel_view = tuple(
            (colour, record.llc_colour_fingerprints.get(colour, ()))
            for colour in kernel_colours
        )
    return (
        record.released_at,
        tuple(
            (name, record.post_flush_fingerprints[name])
            for name in sorted(record.post_flush_fingerprints)
        ),
        own_view,
        kernel_view,
    )


def lo_projection(kernel: Kernel, observer: str) -> List[Tuple]:
    """The Lo-relevant state projection at each switch into ``observer``."""
    domain = kernel.domains[observer]
    colours = sorted(domain.colours)
    kernel_colours = sorted(kernel.allocator.kernel_colours)
    way_partitioned = kernel.tp.way_partitioning
    projections = []
    for record in kernel.switch_records:
        entry = projection_entry(
            record, observer, colours, kernel_colours, way_partitioned
        )
        if entry is not None:
            projections.append(entry)
    return projections


def check_unwinding(kernel: Kernel, observer: str) -> UnwindingCheck:
    """Check the switch-boundary unwinding conditions for ``observer``."""
    failures: List[str] = []
    domain = kernel.domains.get(observer)
    if domain is None:
        raise KeyError(f"no domain {observer!r}")
    entries = [r for r in kernel.switch_records if r.to_domain == observer]

    # Condition 1: entry into Lo happens at schedule + pad (constant
    # relative to the schedule), i.e. Case 2b's constant-time switch.
    for number, record in enumerate(entries):
        if record.pad_target is None:
            failures.append(
                f"entry #{number}: unpadded switch "
                f"(latency {record.switch_latency} is history-dependent)"
            )
        elif record.released_at != record.pad_target:
            failures.append(
                f"entry #{number}: released at {record.released_at} != "
                f"pad target {record.pad_target}"
            )

    # Condition 2: the flushable state Lo inherits is the reset state.
    for number, record in enumerate(entries):
        expected = {
            element.name
            for element in kernel.machine.flushable_elements_of_core(record.core_id)
        }
        if set(record.flushed_elements) != expected:
            failures.append(
                f"entry #{number}: inherited unflushed state "
                f"{sorted(expected - set(record.flushed_elements))}"
            )
            continue
        for name in sorted(record.flushed_elements):
            if record.post_flush_fingerprints.get(name) != record.reset_fingerprints.get(name):
                failures.append(
                    f"entry #{number}: {name} not in reset state at entry"
                )

    # Condition 3: the kernel-shared LLC colours Lo inherits are canonical.
    kernel_colours = sorted(kernel.allocator.kernel_colours)
    reference: Optional[Dict[int, tuple]] = None
    for number, record in enumerate(entries):
        if not record.llc_colour_fingerprints:
            continue
        snapshot = {
            colour: record.llc_colour_fingerprints.get(colour, ())
            for colour in kernel_colours
        }
        if reference is None:
            reference = snapshot
        elif snapshot != reference:
            failures.append(
                f"entry #{number}: kernel-shared LLC state differs from entry #0"
            )

    return UnwindingCheck(
        observer_domain=observer,
        passed=not failures,
        failures=failures,
        switches_into_observer=len(entries),
    )

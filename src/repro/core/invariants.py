"""Partitioning invariants: the functional properties behind PO-2.

"For partitionable state, temporal isolation becomes a functional
property (namely an invariant about correct partitioning) that can be
verified without any reference to time, meaning existing verification
techniques apply." (Sect. 5)

Three invariant families are checked here:

* **static allocation invariants** -- domain colour sets (and the
  kernel's reserved colour) are pairwise disjoint; kernel images are
  frame-disjoint across domains;
* **dynamic touch invariants** -- replaying the instrumentation summary,
  every touch of a partitionable element lies inside the partition the
  toucher is entitled to (user: its domain's colours; kernel-on-behalf:
  domain colours plus the kernel's shared colour; switch path: the union
  of the two adjacent domains plus the kernel's);
* **TLB/ASID isolation** (Sect. 5.3, after Syeda & Klein) -- no TLB touch
  recorded for a domain ever names another domain's ASID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..hardware.state import StateCategory
from ..kernel.kernel import Kernel


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to act on."""

    invariant: str
    context: str
    element: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.context} on {self.element}: {self.detail}"


def _allowed_colours(kernel: Kernel, context: str) -> Optional[Set[int]]:
    """Colour set the instrumentation context may touch; None = anything.

    Context labels: ``"Dom"`` (user), ``"Dom/kernel"`` (trap handling on
    behalf of Dom), ``"@switch:From>To"`` (the switch path).
    """
    if not kernel.tp.cache_colouring:
        return None
    kernel_colours = set(kernel.allocator.kernel_colours)
    if context.startswith("@switch:"):
        pair = context[len("@switch:"):]
        from_name, _, to_name = pair.partition(">")
        allowed = set(kernel_colours)
        for name in (from_name, to_name):
            domain = kernel.domains.get(name)
            if domain is not None:
                allowed |= domain.colours
        return allowed
    name, _, mode = context.partition("/")
    domain = kernel.domains.get(name)
    if domain is None:
        return None
    allowed = set(domain.colours)
    if mode == "kernel":
        allowed |= kernel_colours
    return allowed


def check_colour_disjointness(kernel: Kernel) -> List[Violation]:
    """Static invariant: colour assignments are pairwise disjoint.

    With way partitioning active, the LLC is partitioned by way quotas
    instead, so missing colour disjointness is not a violation.
    """
    violations: List[Violation] = []
    if not kernel.tp.cache_colouring:
        if len(kernel.domains) > 1 and not kernel.tp.way_partitioning:
            violations.append(
                Violation(
                    invariant="colour-disjointness",
                    context="@allocator",
                    element="llc",
                    detail="cache colouring disabled: domains share all colours",
                )
            )
        return violations
    if not kernel.allocator.verify_disjoint():
        violations.append(
            Violation(
                invariant="colour-disjointness",
                context="@allocator",
                element="llc",
                detail=f"overlapping assignments: {kernel.allocator.assignments()}",
            )
        )
    return violations


def check_kernel_image_disjointness(kernel: Kernel) -> List[Violation]:
    """Static invariant: per-domain kernel images share no frames."""
    violations: List[Violation] = []
    if not kernel.tp.kernel_clone:
        if len(kernel.domains) > 1:
            violations.append(
                Violation(
                    invariant="kernel-image-disjointness",
                    context="@clone",
                    element="kernel.master",
                    detail="kernel clone disabled: domains share the kernel image",
                )
            )
        return violations
    if not kernel.clone_manager.images_disjoint():
        violations.append(
            Violation(
                invariant="kernel-image-disjointness",
                context="@clone",
                element="kernel.master",
                detail="cloned kernel images overlap in physical frames",
            )
        )
    return violations


def check_partition_touches(kernel: Kernel) -> List[Violation]:
    """Dynamic invariant: recorded touches respect the colour partitions."""
    violations: List[Violation] = []
    elements_by_name = {
        element.name: element
        for element in kernel.machine.all_state_elements()
    }
    for (context, element_name), indices in sorted(
        kernel.machine.instrumentation.summary.items(),
        key=lambda item: (str(item[0][0]), item[0][1]),
    ):
        if context is None:
            continue
        element = elements_by_name.get(element_name)
        if element is None or element.category is not StateCategory.PARTITIONABLE:
            continue
        allowed = _allowed_colours(kernel, context)
        if allowed is None:
            continue
        touched_colours = {element.partition_of_index(index) for index in indices}
        illegal = touched_colours - allowed
        if illegal:
            violations.append(
                Violation(
                    invariant="partition-touches",
                    context=context,
                    element=element_name,
                    detail=(
                        f"touched colours {sorted(illegal)} outside allowed "
                        f"{sorted(allowed)}"
                    ),
                )
            )
    return violations


def check_way_quotas(kernel: Kernel) -> List[Violation]:
    """Dynamic invariant: CAT-style way quotas were never exceeded.

    The cache enforces quotas on every fill and logs any fill that had to
    steal another partition's quota'd line (possible only when the
    configured quotas over-commit the associativity); this check surfaces
    both that log and the final occupancy audit.
    """
    violations: List[Violation] = []
    llc = kernel.machine.llc
    if not llc.way_quota:
        if kernel.tp.way_partitioning:
            violations.append(
                Violation(
                    invariant="way-quotas",
                    context="@kernel",
                    element="llc",
                    detail="way partitioning requested but no quotas installed",
                )
            )
        return violations
    for entry in llc.quota_violations:
        violations.append(
            Violation(
                invariant="way-quotas",
                context="@llc",
                element="llc",
                detail=entry,
            )
        )
    if not llc.quotas_respected():
        violations.append(
            Violation(
                invariant="way-quotas",
                context="@llc",
                element="llc",
                detail="a partition occupies more ways than its quota",
            )
        )
    return violations


def check_tlb_asid_isolation(kernel: Kernel) -> List[Violation]:
    """No domain's execution ever touches another domain's ASID in a TLB."""
    violations: List[Violation] = []
    asid_owner: Dict[int, str] = {}
    for domain in kernel.domains.values():
        for tcb in domain.threads:
            asid_owner[tcb.space.asid] = domain.name
    tlb_names = {
        element.name
        for element in kernel.machine.all_state_elements()
        if element.name.endswith(".tlb")
    }
    for (context, element_name), indices in kernel.machine.instrumentation.summary.items():
        if element_name not in tlb_names or context is None:
            continue
        if context.startswith("@switch:"):
            continue
        domain_name = context.partition("/")[0]
        if domain_name not in kernel.domains:
            continue
        for index in indices:
            if not isinstance(index, tuple) or len(index) != 2:
                continue
            asid = index[0]
            owner = asid_owner.get(asid)
            if owner is not None and owner != domain_name:
                violations.append(
                    Violation(
                        invariant="tlb-asid-isolation",
                        context=context,
                        element=element_name,
                        detail=f"touched ASID {asid} owned by {owner!r}",
                    )
                )
    return violations

"""The executable case split of Sect. 5.2.

The paper's proof sketch fixes a domain Lo and case-splits each of its
execution steps:

* **Case 1** -- an ordinary user-mode instruction: its latency reads the
  I-cache set named by the pc and the D-cache state of the addresses it
  accesses, all of which lie inside the current domain's partition (or in
  flushed, core-local state).
* **Case 2a** -- a trap (syscall/exception): adds the kernel text (the
  domain's own clone) and global kernel data (deterministically accessed,
  re-normalised at switches).
* **Case 2b** -- the preemption-timer domain switch: covered by the
  constant-time switch property.

:func:`audit` replays a run's captured step footprints, classifies every
step into these cases, and discharges each case's condition.  The output
is the per-case accounting the paper's proof would generate as lemmas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel.kernel import Kernel
from .timefn import (
    ConfinementReport,
    TimeFunctionWitness,
    check_confinement,
    witnesses_from_kernel,
)


@dataclass
class CaseResult:
    case: str
    description: str
    steps: int
    passed: bool
    failures: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        head = f"Case {self.case} [{status}] {self.description}: {self.steps} steps"
        if self.failures:
            head += "\n" + "\n".join(f"    - {f}" for f in self.failures[:5])
        return head


@dataclass
class CaseSplitAudit:
    """The full Sect. 5.2 case split for one run."""

    results: List[CaseResult]
    total_steps: int

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def result_for(self, case: str) -> CaseResult:
        for result in self.results:
            if result.case == case:
                return result
        raise KeyError(f"no case {case!r}")

    def __str__(self) -> str:
        lines = [f"case split over {self.total_steps} steps:"]
        lines += [str(result) for result in self.results]
        return "\n".join(lines)


def audit(kernel: Kernel, observer: Optional[str] = None) -> CaseSplitAudit:
    """Classify and check every captured step of an (already-run) kernel.

    ``kernel.capture_footprints`` must have been True during the run.
    ``observer`` restricts Cases 1/2a to one domain's steps (the paper
    fixes Lo "without loss of generality"); by default all domains'
    steps are audited, which is the stronger statement.
    """
    if not kernel.step_footprints:
        raise ValueError(
            "no step footprints captured; set kernel.capture_footprints = True "
            "before running"
        )
    witnesses = witnesses_from_kernel(kernel)
    if observer is not None:
        witnesses = [
            w
            for w in witnesses
            if w.case == "2b" or w.context == observer
        ]

    results: List[CaseResult] = []
    for case, description in (
        ("1", "user instruction latency confined to own partition"),
        ("2a", "trap latency confined to own partition + kernel-shared state"),
    ):
        case_witnesses = [w for w in witnesses if w.case == case]
        report = check_confinement(kernel, case_witnesses)
        results.append(
            CaseResult(
                case=case,
                description=description,
                steps=len(case_witnesses),
                passed=report.confined,
                failures=report.violations,
            )
        )

    # Case 2b: the constant-time switch property, from the switch records.
    switch_failures: List[str] = []
    switch_count = 0
    for number, record in enumerate(kernel.switch_records):
        switch_count += 1
        if record.pad_target is None:
            switch_failures.append(f"switch #{number}: unpadded")
        elif record.released_at != record.pad_target or record.overrun:
            switch_failures.append(
                f"switch #{number}: not constant-time "
                f"(released {record.released_at}, target {record.pad_target})"
            )
    results.append(
        CaseResult(
            case="2b",
            description="domain switch takes a constant, padded time",
            steps=switch_count,
            passed=not switch_failures,
            failures=switch_failures,
        )
    )
    return CaseSplitAudit(results=results, total_steps=len(witnesses))

"""Channel matrices from (input, observation) samples.

Cock et al. [2014] quantify timing channels on seL4 by sampling a channel
matrix -- the conditional distribution of the observable output (a
latency, an arrival time) for each input symbol (the secret) -- and
computing capacity measures over it.  This module builds such matrices
from raw experiment samples, with observation binning delegated to
:mod:`repro.analysis.discretise`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np


@dataclass
class ChannelMatrix:
    """Row-stochastic matrix: P[observation | input symbol].

    Attributes:
        inputs: row labels (the secret symbols).
        outputs: column labels (the observation bins).
        matrix: shape (len(inputs), len(outputs)), rows summing to 1.
        counts: raw sample counts behind the probabilities.
    """

    inputs: List[Hashable]
    outputs: List[Hashable]
    matrix: np.ndarray
    counts: np.ndarray

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_outputs(self) -> int:
        return len(self.outputs)

    def row(self, symbol: Hashable) -> np.ndarray:
        return self.matrix[self.inputs.index(symbol)]

    def total_samples(self) -> int:
        return int(self.counts.sum())

    def is_degenerate(self) -> bool:
        """True iff all rows are identical: a channel carrying nothing."""
        if self.n_inputs < 2:
            return True
        return bool(np.allclose(self.matrix, self.matrix[0:1, :]))


def from_samples(
    samples: Sequence[Tuple[Hashable, Hashable]]
) -> ChannelMatrix:
    """Build a channel matrix from (input symbol, observation) pairs."""
    if not samples:
        raise ValueError("no samples")
    inputs = sorted({symbol for symbol, _obs in samples}, key=repr)
    outputs = sorted({obs for _symbol, obs in samples}, key=repr)
    input_index = {symbol: i for i, symbol in enumerate(inputs)}
    output_index = {obs: j for j, obs in enumerate(outputs)}
    counts = np.zeros((len(inputs), len(outputs)), dtype=np.int64)
    for symbol, obs in samples:
        counts[input_index[symbol], output_index[obs]] += 1
    row_sums = counts.sum(axis=1, keepdims=True)
    if (row_sums == 0).any():
        raise ValueError("every input symbol needs at least one sample")
    matrix = counts / row_sums
    return ChannelMatrix(
        inputs=list(inputs), outputs=list(outputs), matrix=matrix, counts=counts
    )


def decode_accuracy(
    samples: Sequence[Tuple[Hashable, Hashable]],
    train_fraction: float = 0.5,
) -> float:
    """Maximum-likelihood decode accuracy under a train/test split.

    A crude but robust end-to-end channel measure: train a ML decoder
    (argmax over per-symbol observation histograms) on the first part of
    the samples, report its accuracy on the rest.  Chance level is
    ``1 / n_symbols``.
    """
    if not samples:
        raise ValueError("no samples")
    # Stratify the split per symbol so both halves see every symbol.
    by_symbol: Dict[Hashable, List[Tuple[Hashable, Hashable]]] = {}
    for symbol, obs in samples:
        by_symbol.setdefault(symbol, []).append((symbol, obs))
    train: List[Tuple[Hashable, Hashable]] = []
    test: List[Tuple[Hashable, Hashable]] = []
    for symbol in sorted(by_symbol, key=repr):
        group = by_symbol[symbol]
        split = max(1, int(len(group) * train_fraction))
        train.extend(group[:split])
        test.extend(group[split:])
    if not test:
        # Too few samples for a holdout: fall back to resubstitution
        # accuracy (optimistic, but well-defined on tiny sample sets).
        test = list(train)
    histogram: Dict[Hashable, Dict[Hashable, int]] = {}
    for symbol, obs in train:
        histogram.setdefault(obs, {})
        histogram[obs][symbol] = histogram[obs].get(symbol, 0) + 1
    symbols = sorted({symbol for symbol, _obs in samples}, key=repr)
    prior = symbols[0]
    correct = 0
    for symbol, obs in test:
        votes = histogram.get(obs)
        if votes:
            guess = max(sorted(votes, key=repr), key=lambda s: votes[s])
        else:
            guess = prior
        if guess == symbol:
            correct += 1
    return correct / len(test)

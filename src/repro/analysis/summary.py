"""Pivot campaign result stores into paper-style summary matrices.

The paper's evaluation tables are (configuration × mechanism) grids of
channel capacities; this module reproduces that shape from the JSONL
records the campaign engine writes: one cell per (machine, TP config),
aggregated over attacks and seeds.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

_AGGREGATES: Dict[str, Callable[[List[float]], float]] = {
    "max": max,
    "min": min,
    "mean": lambda values: sum(values) / len(values),
}


def _stat(record: Mapping[str, Any], value: str) -> Optional[float]:
    result = record.get("result") or {}
    stats = result.get("stats") or {}
    raw = stats.get(value)
    return float(raw) if raw is not None else None


def pivot_records(
    records: Iterable[Mapping[str, Any]],
    rows: str = "machine",
    cols: str = "tp",
    value: str = "capacity_bits",
    agg: str = "max",
) -> Tuple[List[str], List[str], Dict[Tuple[str, str], float]]:
    """Pivot successful trial records into a (rows × cols) matrix.

    Cells aggregate over everything not pinned by the row/col labels
    (attacks, seeds, params).  The default — worst-case ``capacity_bits``
    per (machine, tp) — answers "is any surveyed channel still open under
    this configuration on this machine?".

    Returns ``(row_labels, col_labels, cells)``; combinations with no
    successful record are simply absent from ``cells``.
    """
    if agg not in _AGGREGATES:
        raise KeyError(f"unknown aggregate {agg!r}; choices: {sorted(_AGGREGATES)}")
    bucket: Dict[Tuple[str, str], List[float]] = {}
    row_labels: List[str] = []
    col_labels: List[str] = []
    for record in records:
        if record.get("status") != "ok":
            continue
        stat = _stat(record, value)
        if stat is None:
            continue
        row, col = str(record.get(rows)), str(record.get(cols))
        if row not in row_labels:
            row_labels.append(row)
        if col not in col_labels:
            col_labels.append(col)
        bucket.setdefault((row, col), []).append(stat)
    aggregate = _AGGREGATES[agg]
    cells = {pair: aggregate(values) for pair, values in bucket.items()}
    return row_labels, col_labels, cells


def format_matrix(
    row_labels: List[str],
    col_labels: List[str],
    cells: Mapping[Tuple[str, str], float],
    title: str = "worst channel capacity (bits/symbol)",
    closed_below: float = 1e-3,
) -> str:
    """Render a pivot as an aligned text table.

    Closed cells (below ``closed_below``) render as ``·`` so open
    channels stand out at a glance.
    """
    corner = "machine \\ tp"
    row_width = max([len(corner)] + [len(r) for r in row_labels])
    col_width = max([8] + [len(c) for c in col_labels]) + 2
    lines = [f"=== {title} ==="]
    header = f"{corner:<{row_width}}" + "".join(
        f"{col:>{col_width}}" for col in col_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in row_labels:
        rendered = []
        for col in col_labels:
            cell = cells.get((row, col))
            if cell is None:
                rendered.append(f"{'-':>{col_width}}")
            elif cell < closed_below:
                rendered.append(f"{'·':>{col_width}}")
            else:
                rendered.append(f"{cell:>{col_width}.3f}")
        lines.append(f"{row:<{row_width}}" + "".join(rendered))
    lines.append(f"(· = closed, capacity < {closed_below:g} bits/symbol)")
    return "\n".join(lines)


def capacity_matrix(
    records: Iterable[Mapping[str, Any]],
    value: str = "capacity_bits",
    agg: str = "max",
    title: Optional[str] = None,
) -> str:
    """One-call helper: pivot records and render the capacity table."""
    row_labels, col_labels, cells = pivot_records(
        records, value=value, agg=agg
    )
    return format_matrix(
        row_labels,
        col_labels,
        cells,
        title=title or f"{agg} {value} per (machine, tp)",
    )

"""Channel capacity and mutual information over channel matrices.

Shannon capacity is computed with the Blahut-Arimoto algorithm; mutual
information with the plugin estimator under a given (default uniform)
input distribution.  For the noiseless, deterministic channels this
simulator produces, both converge quickly and agree with the analytic
values (log2 of the number of distinguishable inputs).
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from .channel_matrix import ChannelMatrix, from_samples

_EPS = 1e-12


def mutual_information(
    matrix: ChannelMatrix, input_dist: Optional[Sequence[float]] = None
) -> float:
    """I(X;Y) in bits for the given input distribution (default uniform)."""
    conditional = matrix.matrix
    n_inputs = matrix.n_inputs
    if input_dist is None:
        px = np.full(n_inputs, 1.0 / n_inputs)
    else:
        px = np.asarray(input_dist, dtype=float)
        if px.shape != (n_inputs,):
            raise ValueError(
                f"input distribution must have {n_inputs} entries"
            )
        if not np.isclose(px.sum(), 1.0):
            raise ValueError("input distribution must sum to 1")
    joint = px[:, None] * conditional
    py = joint.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_term = np.log2(
            np.where(joint > _EPS, joint / (px[:, None] * py[None, :] + _EPS), 1.0)
        )
    return float(np.sum(joint * log_term))


def mutual_information_from_samples(
    samples: Sequence[Tuple[Hashable, Hashable]],
    input_dist: Optional[Sequence[float]] = None,
) -> float:
    """I(X;Y) in bits straight from ``(symbol, observation)`` samples.

    The one sample-level MI entry point of the package: the attack
    harness (:meth:`repro.attacks.harness.ChannelResult
    .mutual_information_bits`), the synth env's fitness signal and the
    campaign reports all call this, so a genome's fitness can never
    disagree with what the campaign later reports for the same samples.
    """
    return mutual_information(from_samples(samples), input_dist)


def blahut_arimoto(
    matrix: ChannelMatrix,
    tolerance: float = 1e-9,
    max_iterations: int = 2000,
) -> Tuple[float, np.ndarray]:
    """Channel capacity in bits and the optimising input distribution.

    Standard Blahut-Arimoto iteration; converges geometrically for any
    row-stochastic matrix.
    """
    conditional = np.clip(matrix.matrix, _EPS, 1.0)
    conditional = conditional / conditional.sum(axis=1, keepdims=True)
    n_inputs = matrix.n_inputs
    px = np.full(n_inputs, 1.0 / n_inputs)
    capacity = 0.0
    for _iteration in range(max_iterations):
        py = px @ conditional
        # D(p(y|x) || p(y)) per input, in bits.
        divergence = np.sum(
            conditional * np.log2(conditional / (py[None, :] + _EPS)), axis=1
        )
        new_capacity = float(np.log2(np.sum(px * np.exp2(divergence))) + _EPS * 0)
        weights = px * np.exp2(divergence)
        px = weights / weights.sum()
        upper = float(np.max(divergence))
        lower = float(np.log2(np.sum(weights)))
        capacity = lower
        if upper - lower < tolerance:
            break
    return max(0.0, capacity), px


def capacity_bits(matrix: ChannelMatrix) -> float:
    """Convenience: just the Blahut-Arimoto capacity."""
    capacity, _dist = blahut_arimoto(matrix)
    return capacity


def min_leakage(matrix: ChannelMatrix) -> float:
    """Min-entropy leakage in bits, uniform prior (Smith's measure).

    ``ML = log2( sum_y max_x P(y|x) )`` -- how much one observation
    multiplies an adversary's probability of guessing the secret in one
    try.  Cock et al. [2014] report this (as CC_0) alongside Shannon
    capacity because it bounds single-guess attacks that Shannon capacity
    can understate.
    """
    column_maxima = matrix.matrix.max(axis=0)
    return float(np.log2(max(column_maxima.sum(), 1.0)))


def zero_leakage(matrix: ChannelMatrix, threshold_bits: float = 1e-3) -> bool:
    """True iff the channel carries (numerically) nothing."""
    return matrix.is_degenerate() or capacity_bits(matrix) < threshold_bits


def estimator_bias_bits(n_samples_per_input: int, n_outputs: int) -> float:
    """First-order Miller-Madow bias of the plugin MI estimate, in bits.

    Useful as a "noise floor": measured MI below this value on a closed
    channel is consistent with zero true leakage.
    """
    if n_samples_per_input <= 0:
        return float("inf")
    return (n_outputs - 1) / (2.0 * n_samples_per_input * np.log(2.0))

"""Observation binning for channel-matrix construction.

Raw observations (latencies, arrival times) are often high-cardinality;
binning them keeps channel matrices well-sampled without destroying the
signal.  Binning must be chosen *independently of the secret* -- it is
part of the attacker's decoder, so it may use all observations pooled.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

import numpy as np


def bin_observations(
    samples: Sequence[Tuple[Hashable, float]],
    n_bins: int = 16,
) -> List[Tuple[Hashable, int]]:
    """Quantile-bin the observation component of (symbol, value) samples.

    Returns samples with observations replaced by bin indices.  Constant
    observations collapse to a single bin (a manifestly empty channel).
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    values = np.asarray([float(value) for _symbol, value in samples])
    if values.size == 0:
        return []
    low, high = values.min(), values.max()
    if np.isclose(low, high):
        return [(symbol, 0) for symbol, _value in samples]
    edges = np.quantile(values, np.linspace(0.0, 1.0, n_bins + 1))
    edges = np.unique(edges)
    binned = np.clip(np.searchsorted(edges, values, side="right") - 1, 0, len(edges) - 2)
    return [
        (symbol, int(bin_index))
        for (symbol, _value), bin_index in zip(samples, binned)
    ]


def bin_vectors(
    samples: Sequence[Tuple[Hashable, Sequence[float]]],
) -> List[Tuple[Hashable, Hashable]]:
    """Reduce vector observations (e.g. per-set probe profiles) to features.

    The feature is (argmax index, max - median quantised): which position
    stood out and by how much -- the standard prime-and-probe decode
    input.
    """
    reduced: List[Tuple[Hashable, Hashable]] = []
    for symbol, vector in samples:
        array = np.asarray(list(vector), dtype=float)
        if array.size == 0:
            reduced.append((symbol, (0, 0)))
            continue
        spread = float(array.max() - np.median(array))
        feature = (int(array.argmax()), int(round(spread)))
        reduced.append((symbol, feature))
    return reduced

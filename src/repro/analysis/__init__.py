"""Channel quantification: matrices, capacity, bandwidth.

The measurement half of the reproduction: channels found by
``repro.attacks`` are quantified with the channel-matrix methodology of
Cock et al. [2014] so "channel closed" is a number (capacity below the
estimator noise floor), not an impression.
"""

from .bandwidth import BandwidthEstimate, bsc_capacity, effective_bit_rate
from .capacity import (
    blahut_arimoto,
    capacity_bits,
    estimator_bias_bits,
    min_leakage,
    mutual_information,
    mutual_information_from_samples,
    zero_leakage,
)
from .channel_matrix import ChannelMatrix, decode_accuracy, from_samples
from .discretise import bin_observations, bin_vectors
from .summary import capacity_matrix, format_matrix, pivot_records

__all__ = [
    "BandwidthEstimate",
    "ChannelMatrix",
    "bin_observations",
    "bin_vectors",
    "blahut_arimoto",
    "bsc_capacity",
    "capacity_bits",
    "capacity_matrix",
    "decode_accuracy",
    "effective_bit_rate",
    "estimator_bias_bits",
    "format_matrix",
    "from_samples",
    "min_leakage",
    "mutual_information",
    "mutual_information_from_samples",
    "pivot_records",
    "zero_leakage",
]

"""Channel bandwidth: bits per second from bits per symbol.

Converts per-symbol capacity into a rate given the simulated clock
frequency and the measured symbol period, and adjusts raw bit rates for
decode errors via the binary-symmetric-channel capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BandwidthEstimate:
    bits_per_symbol: float
    symbol_period_cycles: float
    clock_hz: float

    @property
    def symbols_per_second(self) -> float:
        if self.symbol_period_cycles <= 0:
            return 0.0
        return self.clock_hz / self.symbol_period_cycles

    @property
    def bits_per_second(self) -> float:
        return self.bits_per_symbol * self.symbols_per_second


def bsc_capacity(error_rate: float) -> float:
    """Capacity in bits/use of a binary symmetric channel with ``error_rate``."""
    p = min(max(error_rate, 0.0), 1.0)
    if p in (0.0, 1.0):
        return 1.0
    entropy = -p * math.log2(p) - (1 - p) * math.log2(1 - p)
    return max(0.0, 1.0 - entropy)


def effective_bit_rate(
    raw_bits_per_second: float, error_rate: float
) -> float:
    """Error-adjusted rate: raw rate times the BSC capacity."""
    return raw_bits_per_second * bsc_capacity(error_rate)

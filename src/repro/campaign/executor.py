"""Fan trials out over a worker pool, with retry, resume and progress.

The executor is deliberately boring engineering: expand the grid, drop
trials the store already answered, push the rest through a
``multiprocessing`` pool (or a serial loop for ``n_workers=1``), retry
failed attempts a bounded number of times, and append exactly one final
record per trial to the store as results arrive — never in a batch at
the end, so an interrupted campaign loses at most the in-flight trials.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from .progress import ProgressReporter
from .spec import CampaignSpec, TrialSpec
from .store import STATUS_OK, ResultStore
from .worker import run_trial

# Poll interval while waiting on pool results; trials take O(seconds),
# so 20ms adds no measurable latency while keeping the loop responsive.
_POLL_S = 0.02


def default_workers() -> int:
    """Worker count honouring CPU affinity where the platform exposes it."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-POSIX
        return max(1, os.cpu_count() or 1)


@dataclass
class CampaignReport:
    """What a campaign run did, for callers and the CLI exit code."""

    total: int
    executed: int = 0
    skipped: int = 0
    succeeded: int = 0
    failed: int = 0
    retries: int = 0
    wall_time_s: float = 0.0
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return self.failed == 0

    def summary(self) -> str:
        return (
            f"{self.total} trial(s): {self.executed} executed "
            f"({self.succeeded} ok, {self.failed} failed, "
            f"{self.retries} retried attempt(s)), {self.skipped} resumed, "
            f"{self.wall_time_s:.1f}s wall"
        )


def _payload(trial: TrialSpec, attempt: int, timeout_s: float) -> Dict[str, Any]:
    payload = trial.to_payload()
    payload["attempt"] = attempt
    payload["timeout_s"] = timeout_s
    return payload


class CampaignExecutor:
    """Runs a campaign grid against a result store.

    Parameters
    ----------
    store : ResultStore or path
        Where finished-trial records land, one JSONL line each.
    n_workers : int
        Pool size; ``1`` means a plain serial loop in this process (no
        fork, easiest to debug, and what the benchmark baselines).
    timeout_s : float
        Per-trial wall-clock budget, enforced inside the worker via
        ``SIGALRM``; ``0`` disables it.
    max_retries : int
        How many times a failed trial is re-attempted (so a trial runs at
        most ``max_retries + 1`` times).
    resume : bool
        Skip trials whose key already has a successful record on disk.
    """

    def __init__(
        self,
        store: Union[ResultStore, str],
        n_workers: int = 1,
        timeout_s: float = 0.0,
        max_retries: int = 1,
        resume: bool = True,
        reporter: Optional[ProgressReporter] = None,
        quiet: bool = False,
    ):
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.n_workers = max(1, int(n_workers))
        self.timeout_s = float(timeout_s)
        self.max_retries = max(0, int(max_retries))
        self.resume = resume
        self._reporter = reporter
        self.quiet = quiet

    # -- public API -------------------------------------------------------

    def run(
        self, campaign: Union[CampaignSpec, Sequence[TrialSpec]]
    ) -> CampaignReport:
        trials = (
            campaign.trials()
            if isinstance(campaign, CampaignSpec)
            else list(campaign)
        )
        label = campaign.name if isinstance(campaign, CampaignSpec) else "campaign"
        started = time.perf_counter()

        completed = self.store.completed_keys() if self.resume else set()
        todo = [trial for trial in trials if trial.key() not in completed]
        report = CampaignReport(total=len(trials), skipped=len(trials) - len(todo))

        reporter = self._reporter or ProgressReporter(
            total=len(todo), label=label, enabled=not self.quiet
        )
        reporter.start(self.n_workers, report.skipped)

        if todo:
            if self.n_workers == 1:
                self._run_serial(todo, report, reporter)
            else:
                self._run_pool(todo, report, reporter)

        report.wall_time_s = time.perf_counter() - started
        reporter.finish()
        return report

    # -- execution strategies ---------------------------------------------

    def _finish_trial(
        self,
        record: Dict[str, Any],
        report: CampaignReport,
        reporter: ProgressReporter,
    ) -> None:
        self.store.append(record)
        report.records.append(record)
        report.executed += 1
        if record.get("status") == STATUS_OK:
            report.succeeded += 1
        else:
            report.failed += 1
        reporter.update(record)

    def _run_serial(
        self,
        todo: List[TrialSpec],
        report: CampaignReport,
        reporter: ProgressReporter,
    ) -> None:
        for trial in todo:
            attempt = 1
            while True:
                record = run_trial(_payload(trial, attempt, self.timeout_s))
                if record["status"] == STATUS_OK or attempt > self.max_retries:
                    break
                attempt += 1
                report.retries += 1
            self._finish_trial(record, report, reporter)

    def _run_pool(
        self,
        todo: List[TrialSpec],
        report: CampaignReport,
        reporter: ProgressReporter,
    ) -> None:
        # fork shares the (possibly test-extended) attack registry with
        # workers; fall back to the platform default where unavailable.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            context = multiprocessing.get_context()

        with context.Pool(processes=self.n_workers) as pool:
            pending = {
                trial.key(): (
                    trial,
                    1,
                    pool.apply_async(
                        run_trial, (_payload(trial, 1, self.timeout_s),)
                    ),
                )
                for trial in todo
            }
            while pending:
                progressed = False
                for key in list(pending):
                    trial, attempt, handle = pending[key]
                    if not handle.ready():
                        continue
                    progressed = True
                    try:
                        record = handle.get()
                    except Exception as exc:
                        # The worker process itself died (run_trial never
                        # raises); synthesise a failure record.
                        record = _crash_record(trial, attempt, exc)
                    if record["status"] != STATUS_OK and attempt <= self.max_retries:
                        report.retries += 1
                        pending[key] = (
                            trial,
                            attempt + 1,
                            pool.apply_async(
                                run_trial,
                                (_payload(trial, attempt + 1, self.timeout_s),),
                            ),
                        )
                        continue
                    del pending[key]
                    self._finish_trial(record, report, reporter)
                if not progressed:
                    time.sleep(_POLL_S)


def _crash_record(
    trial: TrialSpec, attempt: int, exc: Exception
) -> Dict[str, Any]:
    return {
        "key": trial.key(),
        "machine": trial.machine,
        "tp": trial.tp,
        "attack": trial.attack,
        "seed": trial.seed,
        "params": dict(trial.params),
        "derived_seed": trial.derived_seed(),
        "attempts": attempt,
        "worker": None,
        "status": "failed",
        "result": None,
        "error": f"worker crashed: {exc!r}",
        "wall_time_s": 0.0,
    }


def run_campaign(
    campaign: Union[CampaignSpec, Sequence[TrialSpec]],
    store: Union[ResultStore, str],
    n_workers: int = 1,
    timeout_s: float = 0.0,
    max_retries: int = 1,
    resume: bool = True,
    quiet: bool = False,
) -> CampaignReport:
    """One-call convenience wrapper around :class:`CampaignExecutor`."""
    executor = CampaignExecutor(
        store=store,
        n_workers=n_workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
        resume=resume,
        quiet=quiet,
    )
    return executor.run(campaign)

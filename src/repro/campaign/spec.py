"""Declarative campaign specifications.

A :class:`CampaignSpec` names a grid — machine presets × TP configs ×
attacks × seeds (plus per-attack parameter overrides) — and expands it
into concrete :class:`TrialSpec` instances.  Everything is plain data:
specs round-trip through JSON, and trial payloads pickle cleanly into
worker processes.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from . import registry


def _params_fingerprint(params: Mapping[str, Any]) -> str:
    """Short stable digest of a parameter dict (order-insensitive)."""
    canonical = json.dumps(params, sort_keys=True, default=str)
    return f"{zlib.crc32(canonical.encode('utf-8')):08x}"


@dataclass(frozen=True)
class TrialSpec:
    """One point of a campaign grid, identified by a stable string key."""

    machine: str
    tp: str
    attack: str
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    # Instrumentation fidelity: "full" (per-touch evidence, proof-ready)
    # or "counting" (aggregate counters only -- the sweep fast path).
    instrumentation: str = "full"
    # Stepping engine: "scalar" or "batch" (lockstep numpy engine; falls
    # back to scalar per-trial when the workload leaves its envelope).
    engine: str = "scalar"

    def key(self) -> str:
        """Stable identifier used for result storage and resume."""
        base = (
            f"machine={self.machine}/tp={self.tp}/"
            f"attack={self.attack}/seed={self.seed}"
        )
        if self.params:
            base += f"/params={_params_fingerprint(self.params)}"
        if self.instrumentation != "full":
            # Appended conditionally so pre-existing stores keep their keys.
            base += f"/instr={self.instrumentation}"
        if self.engine != "scalar":
            base += f"/engine={self.engine}"
        return base

    def derived_seed(self) -> int:
        """Deterministic per-trial RNG seed: grid seed mixed with the key.

        Distinct trials get distinct streams even for the same grid seed,
        and re-running a trial always reproduces its stream.
        """
        return (zlib.crc32(self.key().encode("utf-8")) << 8) ^ (self.seed & 0xFF)

    def to_payload(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["params"] = dict(self.params)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TrialSpec":
        return cls(
            machine=payload["machine"],
            tp=payload["tp"],
            attack=payload["attack"],
            seed=int(payload.get("seed", 0)),
            params=dict(payload.get("params", {})),
            instrumentation=str(payload.get("instrumentation", "full")),
            engine=str(payload.get("engine", "scalar")),
        )

    def validate(self) -> None:
        if self.instrumentation not in ("full", "counting"):
            raise KeyError(
                f"unknown instrumentation {self.instrumentation!r}; "
                f"choices: ['counting', 'full']"
            )
        if self.engine not in ("scalar", "batch"):
            raise KeyError(
                f"unknown engine {self.engine!r}; "
                f"choices: ['batch', 'scalar']"
            )
        if self.machine not in registry.MACHINES:
            raise KeyError(
                f"unknown machine {self.machine!r}; "
                f"choices: {sorted(registry.MACHINES)}"
            )
        if self.tp not in registry.TP_CONFIGS:
            raise KeyError(
                f"unknown tp config {self.tp!r}; "
                f"choices: {sorted(registry.TP_CONFIGS)}"
            )
        if self.attack not in registry.ATTACKS:
            raise KeyError(
                f"unknown attack {self.attack!r}; "
                f"choices: {sorted(registry.ATTACKS)}"
            )


@dataclass
class CampaignSpec:
    """A grid of trials plus the knobs shared by all of them.

    ``attack_params`` maps attack name -> parameter overrides merged over
    the registry defaults for that attack.  Attacks that need more cores
    than a machine preset provides are skipped for that machine (the
    cross product would otherwise be unsatisfiable for mixed grids).
    """

    machines: Sequence[str] = ("tiny",)
    tps: Sequence[str] = ("full", "none")
    attacks: Sequence[str] = ("e5",)
    seeds: Sequence[int] = (0,)
    attack_params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    name: str = "campaign"
    # Applied to every trial in the grid; "counting" trades proof-grade
    # touch evidence for sweep throughput.
    instrumentation: str = "full"
    # Applied to every trial in the grid; "batch" steps each trial's
    # runs through the lockstep numpy engine where possible.
    engine: str = "scalar"

    def trials(self) -> List[TrialSpec]:
        """Expand the grid, skipping core-starved (machine, attack) pairs."""
        cores: Dict[str, int] = {}
        out: List[TrialSpec] = []
        for machine in self.machines:
            if machine not in cores:
                cores[machine] = registry.machine_core_count(machine)
            for attack in self.attacks:
                entry = registry.ATTACKS.get(attack)
                if entry is None:
                    raise KeyError(
                        f"unknown attack {attack!r}; "
                        f"choices: {sorted(registry.ATTACKS)}"
                    )
                if entry.needs_cores > cores[machine]:
                    continue
                params = dict(self.attack_params.get(attack, {}))
                for tp in self.tps:
                    for seed in self.seeds:
                        trial = TrialSpec(
                            machine=machine,
                            tp=tp,
                            attack=attack,
                            seed=int(seed),
                            params=params,
                            instrumentation=self.instrumentation,
                            engine=self.engine,
                        )
                        trial.validate()
                        out.append(trial)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "machines": list(self.machines),
            "tps": list(self.tps),
            "attacks": list(self.attacks),
            "seeds": list(self.seeds),
            "attack_params": {
                attack: dict(params)
                for attack, params in self.attack_params.items()
            },
            "instrumentation": self.instrumentation,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        known = {
            "name", "machines", "tps", "attacks", "seeds", "attack_params",
            "instrumentation", "engine",
        }
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown campaign spec fields: {sorted(unknown)}")
        return cls(
            machines=tuple(data.get("machines", ("tiny",))),
            tps=tuple(data.get("tps", ("full", "none"))),
            attacks=tuple(data.get("attacks", ("e5",))),
            seeds=tuple(int(s) for s in data.get("seeds", (0,))),
            attack_params=dict(data.get("attack_params", {})),
            name=str(data.get("name", "campaign")),
            instrumentation=str(data.get("instrumentation", "full")),
            engine=str(data.get("engine", "scalar")),
        )

    @classmethod
    def from_json_file(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def trial_keys(trials: Iterable[TrialSpec]) -> List[str]:
    return [trial.key() for trial in trials]

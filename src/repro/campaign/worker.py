"""The picklable trial runner executed inside worker processes.

``run_trial`` is a module-level function taking a plain-dict payload and
returning a plain-dict record, so it crosses the ``multiprocessing``
boundary under any start method.  It never raises for trial-level
problems — failures come back as records with ``status="failed"`` so a
single bad grid point cannot take down the pool.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import time
import traceback
from dataclasses import replace
from typing import Any, Dict, Mapping

from . import registry
from .spec import TrialSpec
from .store import STATUS_FAILED, STATUS_OK


class TrialTimeout(Exception):
    """Raised inside a worker when a trial exceeds its cycle budget."""


def _alarm_handler(_signum, _frame):
    raise TrialTimeout()


def _seed_rngs(seed: int) -> None:
    """Deterministically seed every RNG a trial could observe."""
    random.seed(seed)
    try:
        import numpy

        numpy.random.seed(seed % (2 ** 32))
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass


def run_trial(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Execute one trial and return its result record.

    Payload fields: the :class:`TrialSpec` fields plus optional
    ``timeout_s`` (wall-clock budget enforced via ``SIGALRM`` where
    available) and ``attempt`` (bookkeeping echoed back).
    """
    trial = TrialSpec.from_payload(payload)
    timeout_s = payload.get("timeout_s") or 0
    attempt = int(payload.get("attempt", 1))
    started = time.perf_counter()

    record: Dict[str, Any] = {
        "key": trial.key(),
        "machine": trial.machine,
        "tp": trial.tp,
        "attack": trial.attack,
        "seed": trial.seed,
        "params": dict(trial.params),
        "instrumentation": trial.instrumentation,
        "engine": trial.engine,
        "derived_seed": trial.derived_seed(),
        "attempts": attempt,
        "worker": {"pid": os.getpid(), "host": socket.gethostname()},
    }

    use_alarm = timeout_s and hasattr(signal, "SIGALRM")
    previous_handler = None
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(timeout_s)))
    try:
        trial.validate()
        _seed_rngs(trial.derived_seed())
        tp = registry.TP_CONFIGS[trial.tp]()
        if trial.instrumentation != tp.instrumentation:
            tp = replace(tp, instrumentation=trial.instrumentation)
        machine_factory = registry.MACHINES[trial.machine]
        if trial.engine == "scalar":
            result = registry.ATTACKS[trial.attack].run(
                tp, machine_factory, trial.params
            )
        else:
            from ..hardware.batch import BatchUnsupported
            from ..hardware.machine import engine_override

            try:
                with engine_override(trial.engine):
                    result = registry.ATTACKS[trial.attack].run(
                        tp, machine_factory, trial.params
                    )
            except BatchUnsupported as unsupported:
                # Outside the batch envelope: rerun the whole trial on
                # the scalar engine (attacks build fresh systems per
                # symbol, so nothing partial survives), with the RNGs
                # re-seeded so the rerun sees the trial's exact streams.
                record["engine_fallback"] = str(unsupported)
                _seed_rngs(trial.derived_seed())
                with engine_override("scalar"):
                    result = registry.ATTACKS[trial.attack].run(
                        tp, machine_factory, trial.params
                    )
        record["status"] = STATUS_OK
        record["result"] = result.to_record()
        record["error"] = None
    except TrialTimeout:
        record["status"] = STATUS_FAILED
        record["result"] = None
        record["error"] = f"trial timed out after {timeout_s}s"
    except Exception:
        record["status"] = STATUS_FAILED
        record["result"] = None
        record["error"] = traceback.format_exc(limit=8)
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous_handler)

    record["wall_time_s"] = round(time.perf_counter() - started, 6)
    return record

"""Sqlite-backed ResultStore: indexed resume at sweep scale.

Same public API as the JSONL :class:`~repro.campaign.store.ResultStore`
(it *is* one, by subclass), but backed by a WAL-mode sqlite database
with a ``(trial_key, generation)`` primary key:

* ``completed_keys()`` is an index lookup, not a whole-file parse —
  the resume check on a 10^5-record store drops from seconds to
  milliseconds (the ``campaign_store`` bench pins the ratio).
* ``append()`` assigns each record the next generation for its key, so
  re-runs of a trial coexist exactly as duplicate JSONL lines do, and
  ``latest_by_key()`` keeps its "last record wins" semantics.
* ``iter_records()`` streams a cursor in insertion (rowid) order, so
  capacity pivots aggregate without materialising the store.
* WAL mode + ``synchronous=NORMAL`` keeps appends crash-safe (a torn
  transaction rolls back; the trial is simply re-run on resume) while
  amortising fsyncs across the write-ahead log.

Connections are per-thread (the coordinator serves from its own server
thread) and the coordinator is the single writer, so no cross-process
locking is ever needed.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Any, Dict, Iterable, Iterator, Optional, Set

from .store import STATUS_OK, ResultStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    trial_key  TEXT    NOT NULL,
    generation INTEGER NOT NULL,
    status     TEXT    NOT NULL,
    record     TEXT    NOT NULL,
    PRIMARY KEY (trial_key, generation)
);
CREATE INDEX IF NOT EXISTS idx_records_status_key
    ON records (status, trial_key);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', '1');
"""


class SqliteResultStore(ResultStore):
    """Drop-in ``ResultStore`` over sqlite (see module docstring)."""

    def __init__(self, path: str):
        # Deliberately skip the JSONL cache machinery: sqlite reads are
        # already indexed, and ``self.path`` is all the base state used.
        self.path = str(path)
        self._local = threading.local()

    # -- connection management --------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            connection = sqlite3.connect(self.path)
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.executescript(_SCHEMA)
            connection.commit()
            self._local.connection = connection
        return connection

    def close(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    # -- writing ----------------------------------------------------------

    def _insert(self, connection: sqlite3.Connection, record: Dict[str, Any]):
        if "key" not in record:
            raise ValueError("result records must carry a 'key' field")
        connection.execute(
            "INSERT INTO records (trial_key, generation, status, record) "
            "VALUES (?, COALESCE((SELECT MAX(generation) + 1 FROM records "
            "WHERE trial_key = ?), 0), ?, ?)",
            (
                record["key"],
                record["key"],
                str(record.get("status", "")),
                json.dumps(record, sort_keys=True, default=str),
            ),
        )

    def append(self, record: Dict[str, Any]) -> None:
        connection = self._connection()
        with connection:
            self._insert(connection, record)

    def append_many(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append a batch in one transaction; returns how many landed."""
        connection = self._connection()
        count = 0
        with connection:
            for record in records:
                self._insert(connection, record)
                count += 1
        return count

    # -- reading ----------------------------------------------------------

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        cursor = self._connection().execute(
            "SELECT record FROM records ORDER BY rowid"
        )
        for (line,) in cursor:
            yield json.loads(line)

    def records(self):
        return list(self.iter_records())

    def completed_keys(self) -> Set[str]:
        cursor = self._connection().execute(
            "SELECT DISTINCT trial_key FROM records WHERE status = ?",
            (STATUS_OK,),
        )
        return {key for (key,) in cursor}

    def latest_by_key(
        self, status: Optional[str] = STATUS_OK
    ) -> Dict[str, Dict[str, Any]]:
        if status is None:
            query = (
                "SELECT record FROM records WHERE rowid IN "
                "(SELECT MAX(rowid) FROM records GROUP BY trial_key)"
            )
            cursor = self._connection().execute(query)
        else:
            query = (
                "SELECT record FROM records WHERE rowid IN "
                "(SELECT MAX(rowid) FROM records WHERE status = ? "
                "GROUP BY trial_key)"
            )
            cursor = self._connection().execute(query, (status,))
        latest: Dict[str, Dict[str, Any]] = {}
        for (line,) in cursor:
            record = json.loads(line)
            latest[record["key"]] = record
        return latest

    def generations(self, key: str) -> int:
        """How many records this key has accumulated (0 if none)."""
        (count,) = self._connection().execute(
            "SELECT COUNT(*) FROM records WHERE trial_key = ?", (key,)
        ).fetchone()
        return int(count)

    def __len__(self) -> int:
        (count,) = self._connection().execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()
        return int(count)

    def __repr__(self) -> str:
        return f"SqliteResultStore({self.path!r})"


def migrate_store(src_path: str, dst_path: str, batch_size: int = 2000) -> int:
    """Copy every record from one store to another, preserving order.

    Backends are chosen by suffix (see :func:`~repro.campaign.store
    .open_store`), so this converts JSONL -> sqlite, sqlite -> JSONL, or
    same-to-same.  Insertion order carries over (rowid order == line
    order), so generations, ``latest_by_key()`` and ``iter_records()``
    agree with the source store record for record, and resume semantics
    are preserved because ``completed_keys()`` is derived from the same
    records.  A JSONL -> sqlite -> JSONL round trip is bit-identical
    (both ends serialize with sorted keys).  Returns the record count.
    """
    from .store import open_store

    source = open_store(src_path)
    destination = open_store(dst_path)
    if source.path == destination.path:
        raise ValueError("migrate needs distinct source and destination")
    if isinstance(destination, SqliteResultStore):
        batch = []
        migrated = 0
        for record in source.iter_records():
            batch.append(record)
            if len(batch) >= batch_size:
                migrated += destination.append_many(batch)
                batch = []
        if batch:
            migrated += destination.append_many(batch)
        return migrated
    migrated = 0
    for record in source.iter_records():
        destination.append(record)
        migrated += 1
    return migrated


def migrate_jsonl_to_sqlite(
    src_path: str, dst_path: str, batch_size: int = 2000
) -> int:
    """JSONL -> sqlite conversion (the common direction of `migrate_store`)."""
    return migrate_store(src_path, dst_path, batch_size=batch_size)


def store_info(path: str) -> Dict[str, Any]:
    """Summary dict for ``repro-tp store info``."""
    from .store import open_store

    store = open_store(path)
    records = 0
    failed = 0
    for record in store.iter_records():
        records += 1
        if record.get("status") != STATUS_OK:
            failed += 1
    return {
        "path": store.path,
        "backend": type(store).__name__,
        "records": records,
        "failed_records": failed,
        "completed_keys": len(store.completed_keys()),
    }

"""Name registries for campaign trials.

A campaign trial is described entirely by *names* (machine preset, TP
config, attack) plus plain-data parameters, so that trial payloads can
cross a ``multiprocessing`` pickle boundary without dragging closures or
simulator state along.  Worker processes resolve the names back to
factories through these registries.

``MACHINES`` and ``TP_CONFIGS`` are the canonical catalogues for the
whole package; ``repro.cli`` re-exports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from ..attacks import (
    branch_channel,
    event_timing,
    flushreload,
    interconnect_channel,
    irq_channel,
    occupancy,
    primeprobe,
    switch_latency,
)
from ..attacks.harness import ChannelResult
from ..hardware import presets
from ..kernel import TimeProtectionConfig

MACHINES: Dict[str, Callable] = {
    "micro": presets.micro_machine,
    "tiny": presets.tiny_machine,
    "pocket": presets.pocket_machine,
    "tiny2": lambda: presets.tiny_machine(n_cores=2),
    "desktop": presets.desktop_machine,
    "smt": presets.tiny_smt_machine,
    "unflushable": presets.tiny_unflushable_machine,
    "broken-flush": presets.tiny_broken_flush_machine,
    "nocolour": lambda: presets.tiny_nocolour_machine(n_cores=1),
    "contended": presets.contended_machine,
}

TP_CONFIGS: Dict[str, Callable[[], TimeProtectionConfig]] = {
    "full": TimeProtectionConfig.full,
    "none": TimeProtectionConfig.none,
    "way": TimeProtectionConfig.full_with_way_partitioning,
    "no-pad": lambda: TimeProtectionConfig.full().without(pad_switch=False),
    "no-flush": lambda: TimeProtectionConfig.full().without(flush_on_switch=False),
    "no-clone": lambda: TimeProtectionConfig.full().without(kernel_clone=False),
    "no-colour": lambda: TimeProtectionConfig.full().without(cache_colouring=False),
}


@dataclass(frozen=True)
class AttackEntry:
    """One runnable attack: an experiment function plus default knobs.

    ``runner`` must accept ``(tp, machine_factory, **params)`` and return
    a :class:`~repro.attacks.harness.ChannelResult`.
    """

    description: str
    runner: Callable[..., ChannelResult]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    needs_cores: int = 1

    def run(
        self,
        tp: TimeProtectionConfig,
        machine_factory: Callable,
        params: Optional[Mapping[str, Any]] = None,
    ) -> ChannelResult:
        merged = dict(self.defaults)
        merged.update(params or {})
        return self.runner(tp, machine_factory, **merged)


def _synth_experiment(tp, machine_factory, **params):
    """Evolved-genome attack: the genome itself rides in ``params``.

    Imported lazily so this registry stays importable without pulling in
    the synth package (which itself imports the registry).
    """
    from ..synth.runner import PRIME_PROBE_GENOME, experiment

    params.setdefault("genome", PRIME_PROBE_GENOME.to_dict())
    return experiment(tp, machine_factory, **params)


ATTACKS: Dict[str, AttackEntry] = {
    "e1": AttackEntry(
        "downgrader event-timing channel", event_timing.experiment
    ),
    "e2": AttackEntry(
        "time-shared L1 prime-and-probe",
        primeprobe.l1_experiment,
        {"symbols": (2, 4, 6), "rounds_per_run": 6},
    ),
    "e3": AttackEntry(
        "concurrent LLC prime-and-probe",
        primeprobe.llc_experiment,
        needs_cores=2,
    ),
    "e4": AttackEntry("kernel-text Flush+Reload", flushreload.experiment),
    "e5": AttackEntry(
        "dirty-line switch-latency channel",
        switch_latency.experiment,
        {"symbols": (1, 10), "rounds_per_run": 6},
    ),
    "e6": AttackEntry("completion-interrupt channel", irq_channel.experiment),
    "e7": AttackEntry(
        "cross-core interconnect bandwidth channel",
        interconnect_channel.experiment,
        needs_cores=2,
    ),
    "branch": AttackEntry(
        "cross-domain branch-predictor channel", branch_channel.experiment
    ),
    "occupancy": AttackEntry(
        "cache occupancy channel",
        occupancy.experiment,
        {"symbols": (1, 8), "rounds_per_run": 5},
    ),
    "synth": AttackEntry(
        "search-evolved attack genome (see repro.synth)",
        _synth_experiment,
        {"victim": "set_hammer"},
    ),
}


def register_attack(
    name: str,
    runner: Callable[..., ChannelResult],
    defaults: Optional[Mapping[str, Any]] = None,
    needs_cores: int = 1,
    description: str = "",
) -> AttackEntry:
    """Register a custom attack so campaigns can refer to it by name.

    With the default ``fork`` start method on POSIX, attacks registered
    before the worker pool starts are visible inside workers too.
    """
    entry = AttackEntry(
        description or name, runner, dict(defaults or {}), needs_cores
    )
    ATTACKS[name] = entry
    return entry


def unregister_attack(name: str) -> None:
    ATTACKS.pop(name, None)


def machine_core_count(machine_name: str) -> int:
    """Number of cores of a machine preset (builds one instance)."""
    if machine_name not in MACHINES:
        raise KeyError(f"unknown machine preset {machine_name!r}")
    return len(MACHINES[machine_name]().cores)

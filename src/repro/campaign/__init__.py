"""Campaign engine: parallel experiment orchestration with resume.

Every question the reproduction answers — "does TP config X kill channel
Y on machine Z?" — is a sweep over (machine preset × TP config × attack
× seed).  This subsystem makes such sweeps declarative and cheap:

* :class:`CampaignSpec` names the grid;
* :class:`CampaignExecutor` / :func:`run_campaign` fan trials out over a
  ``multiprocessing`` pool with per-trial timeout and bounded retry;
* :class:`ResultStore` appends one JSONL record per finished trial and
  lets a re-run *resume*, skipping trials already answered on disk;
  :func:`open_store` picks the sqlite backend for ``.sqlite/.db`` paths;
* :mod:`repro.campaign.service` scales the same grid past one host: a
  lease coordinator over HTTP plus a worker fleet (see that package);
* ``repro.analysis.summary`` pivots a store into the paper-style
  (machine × TP config) channel-capacity matrix.
"""

from .executor import (
    CampaignExecutor,
    CampaignReport,
    default_workers,
    run_campaign,
)
from .progress import ProgressReporter
from .registry import (
    ATTACKS,
    MACHINES,
    TP_CONFIGS,
    AttackEntry,
    register_attack,
    unregister_attack,
)
from .spec import CampaignSpec, TrialSpec
from .store import (
    STATUS_FAILED,
    STATUS_OK,
    ResultStore,
    deterministic_view,
    open_store,
)
from .worker import TrialTimeout, run_trial

__all__ = [
    "ATTACKS",
    "AttackEntry",
    "CampaignExecutor",
    "CampaignReport",
    "CampaignSpec",
    "MACHINES",
    "ProgressReporter",
    "ResultStore",
    "STATUS_FAILED",
    "STATUS_OK",
    "TP_CONFIGS",
    "TrialSpec",
    "TrialTimeout",
    "default_workers",
    "deterministic_view",
    "open_store",
    "register_attack",
    "run_campaign",
    "run_trial",
    "unregister_attack",
]

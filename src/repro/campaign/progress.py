"""Campaign progress reporting: throughput and ETA.

Deliberately dependency-free (no tqdm in the container): one log line
per completed trial on the chosen stream, plus a final summary.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:d}:{minutes:02d}:{secs:02d}"


class ProgressReporter:
    """Logs per-trial completions with running throughput and ETA."""

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        stream: Optional[TextIO] = None,
        enabled: bool = True,
    ):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.failed = 0
        self.skipped = 0
        self._started = time.monotonic()

    def _emit(self, message: str) -> None:
        if self.enabled:
            print(f"[{self.label}] {message}", file=self.stream, flush=True)

    def start(self, n_workers: int, n_skipped: int) -> None:
        self.skipped = n_skipped
        self._started = time.monotonic()
        self._emit(
            f"{self.total} trial(s) to run on {n_workers} worker(s)"
            + (f", {n_skipped} already complete (resumed)" if n_skipped else "")
        )

    def update(self, record: Dict[str, Any]) -> None:
        self.done += 1
        if record.get("status") != "ok":
            self.failed += 1
        elapsed = time.monotonic() - self._started
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else 0.0
        self._emit(
            f"{self.done}/{self.total} {record.get('status', '?'):6s} "
            f"{record.get('key', '?')} "
            f"({record.get('wall_time_s', 0):.2f}s, "
            f"{rate * 60:.1f} trials/min, ETA {_format_eta(eta)})"
        )

    def finish(self) -> str:
        elapsed = time.monotonic() - self._started
        summary = (
            f"{self.done} executed ({self.failed} failed), "
            f"{self.skipped} resumed, {elapsed:.1f}s wall"
        )
        self._emit(f"done: {summary}")
        return summary

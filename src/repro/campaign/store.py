"""Append-only JSONL result store with resume support.

One line per completed trial.  Appending is crash-safe in the useful
sense: a record is either fully on disk or absent, and a torn final line
(worker killed mid-write) is detected and ignored on load, so a resumed
campaign simply re-runs that trial.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Set

STATUS_OK = "ok"
STATUS_FAILED = "failed"

# Fields that vary between identical re-runs of the same trial (timing,
# which worker picked it up, when).  Everything else in a record is a
# pure function of the trial spec.
VOLATILE_FIELDS = ("wall_time_s", "worker", "attempts", "campaign")


def deterministic_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """The record minus run-dependent bookkeeping — equal across re-runs."""
    return {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }


class ResultStore:
    """JSONL-backed store keyed by trial key.

    The store is the resume mechanism: ``completed_keys()`` names every
    trial that already has a successful record, and the executor skips
    those on re-run.
    """

    def __init__(self, path: str):
        self.path = str(path)

    # -- writing ----------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        if "key" not in record:
            raise ValueError("result records must carry a 'key' field")
        line = json.dumps(record, sort_keys=True, default=str)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading ----------------------------------------------------------

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail from an interrupted write: drop it; the
                    # trial will simply be re-run on resume.
                    continue
                if isinstance(record, dict) and "key" in record:
                    yield record

    def records(self) -> List[Dict[str, Any]]:
        return list(self.iter_records())

    def completed_keys(self) -> Set[str]:
        """Keys with a successful record (these are skipped on resume)."""
        return {
            record["key"]
            for record in self.iter_records()
            if record.get("status") == STATUS_OK
        }

    def latest_by_key(
        self, status: Optional[str] = STATUS_OK
    ) -> Dict[str, Dict[str, Any]]:
        """Last record per key, optionally filtered by status."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.iter_records():
            if status is None or record.get("status") == status:
                latest[record["key"]] = record
        return latest

    def __len__(self) -> int:
        return sum(1 for _record in self.iter_records())

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"

"""Append-only JSONL result store with resume support.

One line per completed trial.  Appending is crash-safe in the useful
sense: a record is either fully on disk or absent, and a torn final line
(worker killed mid-write) is detected and ignored on load, so a resumed
campaign simply re-runs that trial.

Reads are cached per file signature (mtime_ns, size): ``records()``,
``completed_keys()`` and ``latest_by_key()`` parse the file once and
then serve from memory until the file changes under us, so a resume
loop that consults ``completed_keys()`` repeatedly no longer re-scans
the whole file every call.  ``append()`` keeps the cache coherent
in-place (the common single-writer case never re-reads its own writes);
an *external* writer changes the signature and forces a rescan.

For sweeps past ~10^5 records, prefer the sqlite backend
(:mod:`repro.campaign.store_sqlite` via :func:`open_store`): indexed
``completed_keys()`` instead of any file scan at all.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

STATUS_OK = "ok"
STATUS_FAILED = "failed"

# Fields that vary between identical re-runs of the same trial (timing,
# which worker picked it up, when).  Everything else in a record is a
# pure function of the trial spec.
VOLATILE_FIELDS = ("wall_time_s", "worker", "attempts", "campaign")

#: Path suffixes that select the sqlite backend in :func:`open_store`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def deterministic_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """The record minus run-dependent bookkeeping — equal across re-runs."""
    return {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }


def open_store(path: Union[str, "ResultStore"]) -> "ResultStore":
    """Path -> the right backend: sqlite for ``.sqlite/.sqlite3/.db``,
    JSONL otherwise.  Store objects pass through unchanged."""
    if isinstance(path, ResultStore):
        return path
    path = str(path)
    if path.endswith(SQLITE_SUFFIXES):
        from .store_sqlite import SqliteResultStore

        return SqliteResultStore(path)
    return ResultStore(path)


class ResultStore:
    """JSONL-backed store keyed by trial key.

    The store is the resume mechanism: ``completed_keys()`` names every
    trial that already has a successful record, and the executor skips
    those on re-run.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._cache_signature: Optional[Tuple[int, int]] = None
        self._cache_records: Optional[List[Dict[str, Any]]] = None
        self._cache_ok_keys: Set[str] = set()

    # -- writing ----------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        if "key" not in record:
            raise ValueError("result records must carry a 'key' field")
        line = json.dumps(record, sort_keys=True, default=str)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # Only extend the cache in place when the file is exactly what
        # we last parsed; an interleaved external writer invalidates it.
        cache_valid = (
            self._cache_records is not None
            and self._signature() == self._cache_signature
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if cache_valid:
            # Round-trip through JSON so the cached view is exactly what
            # a fresh scan would parse (tuples -> lists, etc.).
            parsed = json.loads(line)
            self._cache_records.append(parsed)
            if parsed.get("status") == STATUS_OK:
                self._cache_ok_keys.add(parsed["key"])
            self._cache_signature = self._signature()
        else:
            self._invalidate()

    # -- reading ----------------------------------------------------------

    def _signature(self) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(self.path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _invalidate(self) -> None:
        self._cache_signature = None
        self._cache_records = None
        self._cache_ok_keys = set()

    def _scan_file(self) -> Iterator[Dict[str, Any]]:
        """Raw whole-file scan (the uncached path)."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail from an interrupted write: drop it; the
                    # trial will simply be re-run on resume.
                    continue
                if isinstance(record, dict) and "key" in record:
                    yield record

    def _load(self) -> List[Dict[str, Any]]:
        signature = self._signature()
        if (self._cache_records is None
                or signature != self._cache_signature):
            records = list(self._scan_file())
            self._cache_records = records
            self._cache_ok_keys = {
                record["key"]
                for record in records
                if record.get("status") == STATUS_OK
            }
            self._cache_signature = signature
        return self._cache_records

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        yield from self._load()

    def records(self) -> List[Dict[str, Any]]:
        return list(self._load())

    def completed_keys(self) -> Set[str]:
        """Keys with a successful record (these are skipped on resume)."""
        self._load()
        return set(self._cache_ok_keys)

    def latest_by_key(
        self, status: Optional[str] = STATUS_OK
    ) -> Dict[str, Dict[str, Any]]:
        """Last record per key, optionally filtered by status."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self._load():
            if status is None or record.get("status") == status:
                latest[record["key"]] = record
        return latest

    def __len__(self) -> int:
        return len(self._load())

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"

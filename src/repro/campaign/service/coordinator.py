"""The campaign coordinator: leases over HTTP, results into the store.

A deliberately minimal ``asyncio`` HTTP/1.1 server (stdlib only, one
request per connection) over a :class:`~.leases.LeaseTable` and a
result store.  The coordinator is the single store writer: workers
stream records over ``POST /results`` and the coordinator appends each
*newly resolved* record exactly once, so the JSONL and sqlite backends
both see strictly append-only, duplicate-free traffic.

Host time never touches trial content here — the lease clock is an
injected callable (``clock=time.monotonic`` at the composition root),
used only for lease deadlines and heartbeat accounting, which are
operational metadata in the same sense as the existing campaign
wall-clock waivers.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..progress import ProgressReporter
from ..store import ResultStore
from . import protocol
from .leases import ACCEPTED, LeaseTable
from .status import status_payload

#: How often the background sweep re-checks lease deadlines, as a
#: fraction of the TTL (bounded below so tiny TTLs don't spin).
_SWEEP_FRACTION = 0.25
_MIN_SWEEP_S = 0.05


class Coordinator:
    """Routes service requests onto a lease table and a store."""

    def __init__(
        self,
        table: LeaseTable,
        store: ResultStore,
        campaign: str = "campaign",
        reporter: Optional[ProgressReporter] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.table = table
        self.store = store
        self.campaign = campaign
        self.reporter = reporter
        self.clock = clock
        self.workers_seen: Dict[str, int] = {}
        self.on_done: Optional[Callable[[], None]] = None

    # -- request routing ---------------------------------------------------

    def handle(
        self, method: str, path: str, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        now = self.clock()
        if method == "POST" and path == protocol.LEASE_PATH:
            return self._lease(body, now)
        if method == "POST" and path == protocol.HEARTBEAT_PATH:
            return self._heartbeat(body, now)
        if method == "POST" and path == protocol.RESULTS_PATH:
            return self._results(body, now)
        if method == "GET" and path == protocol.STATUS_PATH:
            return 200, self.status()
        return 404, {"error": f"no such endpoint: {method} {path}"}

    def _note_worker(self, body: Dict[str, Any]) -> str:
        worker = str(body.get("worker", "?"))
        self.workers_seen[worker] = self.workers_seen.get(worker, 0) + 1
        return worker

    def _lease(
        self, body: Dict[str, Any], now: float
    ) -> Tuple[int, Dict[str, Any]]:
        worker = self._note_worker(body)
        grant = self.table.acquire(worker, now)
        response = protocol.lease_response(grant, done=self.table.done)
        self._maybe_finish()
        return 200, response

    def _heartbeat(
        self, body: Dict[str, Any], now: float
    ) -> Tuple[int, Dict[str, Any]]:
        self._note_worker(body)
        ok = self.table.heartbeat(
            int(body.get("shard", -1)), int(body.get("generation", -1)), now
        )
        return 200, {"ok": ok, "done": self.table.done}

    def _results(
        self, body: Dict[str, Any], now: float
    ) -> Tuple[int, Dict[str, Any]]:
        self._note_worker(body)
        shard = int(body.get("shard", -1))
        generation = int(body.get("generation", -1))
        records = body.get("records") or []
        outcomes = {"accepted": 0, "duplicate": 0, "unknown": 0}
        for record in records:
            outcome = self.table.submit(shard, generation, record, now)
            if outcome == ACCEPTED:
                record = dict(record)
                record["campaign"] = self.campaign
                self.store.append(record)
                if self.reporter is not None:
                    self.reporter.update(record)
                outcomes["accepted"] += 1
            else:
                outcomes[outcome] += 1
        outcomes["done"] = self.table.done
        self._maybe_finish()
        return 200, outcomes

    def sweep(self) -> None:
        """Expire overdue leases (called periodically by the server)."""
        self.table.expire(self.clock())

    def status(self) -> Dict[str, Any]:
        return status_payload(
            self.table, self.store, self.campaign, self.workers_seen
        )

    def _maybe_finish(self) -> None:
        if self.table.done and self.on_done is not None:
            callback, self.on_done = self.on_done, None
            callback()


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target.split("?", 1)[0], body


def _http_response(status: int, payload: Dict[str, Any]) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               500: "Internal Server Error"}
    data = protocol.encode(payload)
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(data)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + data


class CoordinatorServer:
    """Runs a :class:`Coordinator` on a background thread's event loop.

    The listening socket is bound *synchronously* in :meth:`start` (so
    the port is known before any worker process is forked), then handed
    to ``asyncio.start_server`` inside the thread.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self.url = ""
        self._sock = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._done = threading.Event()
        self._started = threading.Event()
        coordinator.on_done = self._done.set
        if coordinator.table.done:  # fully resumed grid: nothing to serve
            self._done.set()

    # -- lifecycle ---------------------------------------------------------

    def bind(self) -> str:
        """Bind the listening socket now (port known before any fork)."""
        import socket

        if self._sock is None:
            self._sock = socket.create_server(
                (self.host, self.port), reuse_port=False
            )
            self.port = self._sock.getsockname()[1]
            self.url = f"http://{self.host}:{self.port}"
        return self.url

    def start(self) -> str:
        self.bind()
        self._thread = threading.Thread(
            target=self._run, name="campaign-coordinator", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        return self.url

    def close_unstarted(self) -> None:
        """Release a bound socket when the server never needs to run."""
        if self._sock is not None and self._thread is None:
            self._sock.close()
            self._sock = None

    def wait_done(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- server internals --------------------------------------------------

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle, sock=self._sock)
        sweep = asyncio.ensure_future(self._sweep_loop())
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            sweep.cancel()
            server.close()
            await server.wait_closed()

    async def _sweep_loop(self) -> None:
        interval = max(
            _MIN_SWEEP_S, self.coordinator.table.lease_ttl_s * _SWEEP_FRACTION
        )
        while True:
            await asyncio.sleep(interval)
            self.coordinator.sweep()
            if self.coordinator.table.done:
                self._done.set()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            try:
                status, payload = self.coordinator.handle(
                    method, path, protocol.decode(body)
                )
            except ValueError as error:
                status, payload = 400, {"error": str(error)}
            except Exception as error:  # never kill the server on a request
                status, payload = 500, {"error": repr(error)}
            writer.write(_http_response(status, payload))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

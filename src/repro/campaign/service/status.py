"""The live ``/status`` view: progress counters + capacity matrix.

The capacity matrix is computed by *streaming* the store's records
through :func:`repro.analysis.summary.pivot_records` — the sqlite
backend iterates a cursor, never materialising the whole store, so the
status endpoint stays cheap even against a million-record sweep.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ...analysis.summary import format_matrix, pivot_records
from ..store import ResultStore
from .leases import LeaseTable


def capacity_cells(store: ResultStore) -> Dict[str, Any]:
    """JSON-safe (machine × tp) worst-case capacity pivot of a store."""
    rows, cols, cells = pivot_records(store.iter_records())
    return {
        "rows": rows,
        "cols": cols,
        "cells": {
            f"{row}|{col}": round(value, 6)
            for (row, col), value in sorted(cells.items())
        },
    }


def status_payload(
    table: LeaseTable,
    store: ResultStore,
    campaign: str,
    workers_seen: Mapping[str, int],
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "campaign": campaign,
        "store": store.path,
        "workers": {
            worker: workers_seen[worker] for worker in sorted(workers_seen)
        },
    }
    payload.update(table.snapshot())
    payload["capacity"] = capacity_cells(store)
    return payload


def format_status(payload: Mapping[str, Any]) -> str:
    """Render a ``/status`` payload as the CLI progress block."""
    shards = payload.get("shards", {})
    stats = payload.get("stats", {})
    lines = [
        f"campaign {payload.get('campaign', '?')!r}: "
        f"{payload.get('resolved', 0)}/{payload.get('total', 0)} trial(s) "
        f"resolved ({stats.get('failed', 0)} failed), "
        f"{payload.get('open', 0)} open",
        f"shards: {shards.get('available', 0)} available, "
        f"{shards.get('leased', 0)} leased, {shards.get('done', 0)} done "
        f"(ttl {payload.get('lease_ttl_s', 0)}s, "
        f"{stats.get('leases_expired', 0)} expired lease(s) re-issued)",
        f"workers: "
        + (", ".join(
            f"{worker} ({count} req)"
            for worker, count in payload.get("workers", {}).items()
        ) or "-"),
    ]
    capacity = payload.get("capacity") or {}
    cells = {
        tuple(key.split("|", 1)): value
        for key, value in (capacity.get("cells") or {}).items()
    }
    if cells:
        lines.append(format_matrix(
            list(capacity.get("rows", [])),
            list(capacity.get("cols", [])),
            cells,
        ))
    return "\n".join(lines)

"""Sharded trial leases: the coordinator's bookkeeping heart.

The grid is expanded once, in deterministic spec order, into *shards*
(contiguous batches of trial payloads).  A **lease** is one shard handed
to one worker: ``(shard, generation, deadline)``.  The table is a pure
state machine — every method takes ``now`` explicitly, so the whole
lease lifecycle (issue, heartbeat, expiry, re-issue, completion) is
testable with a fake clock and deterministic by construction.

Invariants the tests pin down:

* **No trial lost.**  A shard whose lease deadline passes returns to the
  queue with exactly its unresolved trials; a SIGKILLed worker only
  delays its shard by one TTL.
* **No trial double-counted.**  The first result to arrive for a key
  resolves it; later arrivals (a slow pre-expiry worker racing the
  re-issued lease) are reported as duplicates and never reach the
  store.  Results from a stale generation are still *accepted* when the
  key is unresolved — discarding finished work would be waste, and the
  record content is a pure function of the trial spec either way.
* **Generations are monotonic.**  Each (re-)issue of a shard bumps its
  generation, so heartbeats and submissions can always be attributed to
  the lease that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..spec import TrialSpec
from ..store import STATUS_OK

AVAILABLE = "available"
LEASED = "leased"
DONE = "done"

#: Result-submission outcomes (returned by :meth:`LeaseTable.submit`).
ACCEPTED = "accepted"
DUPLICATE = "duplicate"
UNKNOWN = "unknown"


def plan_payloads(
    trials: Sequence[TrialSpec], timeout_s: float = 0.0
) -> List[Dict[str, Any]]:
    """Trial specs -> wire payloads, with key and per-trial budget embedded."""
    payloads = []
    for trial in trials:
        payload = trial.to_payload()
        payload["key"] = trial.key()
        payload["timeout_s"] = timeout_s
        payloads.append(payload)
    return payloads


@dataclass
class Shard:
    """One batch of trials plus its lease state."""

    shard_id: int
    #: key -> payload, insertion-ordered (dict order is deterministic);
    #: resolved keys are *removed*, so re-issues carry only open work.
    pending: Dict[str, Dict[str, Any]]
    generation: int = 0
    state: str = AVAILABLE
    deadline: float = 0.0
    owner: str = ""

    @property
    def open_count(self) -> int:
        return len(self.pending)


@dataclass
class LeaseStats:
    """Operational counters for reports and the ``/status`` payload."""

    leases_issued: int = 0
    leases_expired: int = 0
    heartbeats: int = 0
    stale_heartbeats: int = 0
    accepted: int = 0
    duplicates: int = 0
    stale_accepted: int = 0
    unknown: int = 0
    succeeded: int = 0
    failed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "leases_issued": self.leases_issued,
            "leases_expired": self.leases_expired,
            "heartbeats": self.heartbeats,
            "stale_heartbeats": self.stale_heartbeats,
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "stale_accepted": self.stale_accepted,
            "unknown": self.unknown,
            "succeeded": self.succeeded,
            "failed": self.failed,
        }


class LeaseTable:
    """Shards a campaign grid and tracks every lease's lifecycle."""

    def __init__(
        self,
        payloads: Sequence[Mapping[str, Any]],
        shard_size: int = 8,
        lease_ttl_s: float = 60.0,
        max_retries: int = 1,
    ):
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.shard_size = int(shard_size)
        self.lease_ttl_s = float(lease_ttl_s)
        self.max_retries = int(max_retries)
        self.stats = LeaseStats()
        #: key -> final status string, filled as results arrive.
        self.resolved: Dict[str, str] = {}
        self.shards: List[Shard] = []
        self._shard_of: Dict[str, int] = {}
        keyed: List[Dict[str, Any]] = []
        for payload in payloads:
            payload = dict(payload)
            key = payload.get("key") or TrialSpec.from_payload(payload).key()
            payload["key"] = key
            if key in self._shard_of:
                continue  # grid expansion never repeats keys; belt & braces
            self._shard_of[key] = -1  # assigned below
            keyed.append(payload)
        for start in range(0, len(keyed), self.shard_size):
            chunk = keyed[start:start + self.shard_size]
            shard = Shard(
                shard_id=len(self.shards),
                pending={p["key"]: p for p in chunk},
            )
            for p in chunk:
                self._shard_of[p["key"]] = shard.shard_id
            self.shards.append(shard)
        self.total = len(keyed)

    # -- queries -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return len(self.resolved) >= self.total

    @property
    def open_trials(self) -> int:
        return self.total - len(self.resolved)

    def counts(self) -> Dict[str, int]:
        states = {AVAILABLE: 0, LEASED: 0, DONE: 0}
        for shard in self.shards:
            states[shard.state] += 1
        return states

    # -- lifecycle ---------------------------------------------------------

    def expire(self, now: float) -> List[int]:
        """Return overdue leased shards to the queue; list what expired."""
        expired = []
        for shard in self.shards:
            if shard.state == LEASED and now >= shard.deadline:
                shard.state = AVAILABLE if shard.pending else DONE
                shard.owner = ""
                if shard.pending:
                    expired.append(shard.shard_id)
                    self.stats.leases_expired += 1
        return expired

    def acquire(self, worker: str, now: float) -> Optional[Dict[str, Any]]:
        """Lease the first available shard to ``worker``, or ``None``.

        The grant carries only the shard's *unresolved* payloads, its
        bumped generation, and the lease TTL; it is JSON-serializable
        as-is.
        """
        self.expire(now)
        for shard in self.shards:
            if shard.state == AVAILABLE and shard.pending:
                shard.generation += 1
                shard.state = LEASED
                shard.owner = worker
                shard.deadline = now + self.lease_ttl_s
                self.stats.leases_issued += 1
                return {
                    "shard": shard.shard_id,
                    "generation": shard.generation,
                    "ttl_s": self.lease_ttl_s,
                    "max_retries": self.max_retries,
                    "trials": [dict(p) for p in shard.pending.values()],
                }
        return None

    def heartbeat(self, shard_id: int, generation: int, now: float) -> bool:
        """Extend a live lease's deadline; False for stale/unknown ones."""
        if not 0 <= shard_id < len(self.shards):
            return False
        shard = self.shards[shard_id]
        if shard.state == LEASED and shard.generation == generation:
            shard.deadline = now + self.lease_ttl_s
            self.stats.heartbeats += 1
            return True
        self.stats.stale_heartbeats += 1
        return False

    def submit(
        self,
        shard_id: int,
        generation: int,
        record: Mapping[str, Any],
        now: float,
    ) -> str:
        """Account one finished-trial record; returns the outcome.

        ``ACCEPTED`` means the caller should append the record to the
        store — exactly one submission per key ever gets that answer.
        """
        key = record.get("key")
        if key is None or key not in self._shard_of:
            self.stats.unknown += 1
            return UNKNOWN
        if key in self.resolved:
            self.stats.duplicates += 1
            return DUPLICATE
        shard = self.shards[self._shard_of[key]]
        self.resolved[key] = str(record.get("status", ""))
        shard.pending.pop(key, None)
        self.stats.accepted += 1
        if record.get("status") == STATUS_OK:
            self.stats.succeeded += 1
        else:
            self.stats.failed += 1
        if shard.shard_id == shard_id and shard.generation == generation:
            if shard.state == LEASED:
                # Progress doubles as a heartbeat.
                shard.deadline = now + self.lease_ttl_s
        else:
            self.stats.stale_accepted += 1
        if not shard.pending:
            shard.state = DONE
            shard.owner = ""
        return ACCEPTED

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic status dict for ``/status`` and reports."""
        return {
            "total": self.total,
            "resolved": len(self.resolved),
            "open": self.open_trials,
            "done": self.done,
            "shards": self.counts(),
            "shard_size": self.shard_size,
            "lease_ttl_s": self.lease_ttl_s,
            "stats": self.stats.to_dict(),
        }

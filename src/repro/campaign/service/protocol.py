"""Wire protocol shared by the coordinator and its workers.

Everything on the wire is JSON with sorted keys over a minimal HTTP/1.1
exchange (one request per connection, ``Connection: close``).  The
payload shapes are plain dicts so both sides stay stdlib-only; this
module centralises the endpoint names, the response constructors, and
the backoff policy so the two halves cannot drift apart.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

#: Endpoint paths (the whole surface area of the service).
LEASE_PATH = "/lease"
HEARTBEAT_PATH = "/heartbeat"
RESULTS_PATH = "/results"
STATUS_PATH = "/status"

#: Suggested poll delay returned when the grid is fully leased out but
#: not yet drained — workers should come back, not exit.
DEFAULT_RETRY_AFTER_S = 0.5


def encode(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, default=str).encode("utf-8")


def decode(body: bytes) -> Dict[str, Any]:
    if not body:
        return {}
    loaded = json.loads(body.decode("utf-8"))
    if not isinstance(loaded, dict):
        raise ValueError(f"expected a JSON object, got {type(loaded).__name__}")
    return loaded


def lease_response(
    grant: Optional[Mapping[str, Any]],
    done: bool,
    retry_after_s: float = DEFAULT_RETRY_AFTER_S,
) -> Dict[str, Any]:
    """``POST /lease`` body: a grant, or "come back later", or "done"."""
    return {
        "lease": dict(grant) if grant is not None else None,
        "done": done,
        "retry_after_s": retry_after_s,
    }


def results_request(
    worker: str, shard: int, generation: int, records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    return {
        "worker": worker,
        "shard": shard,
        "generation": generation,
        "records": records,
    }


@dataclass
class BackoffPolicy:
    """Bounded exponential backoff with *seeded* jitter.

    Deterministic by construction: the jitter stream comes from an
    explicitly seeded ``random.Random`` instance, never the process
    global, so two workers given the same seed back off identically and
    SC-2 stays clean with zero waivers.
    """

    base_s: float = 0.1
    cap_s: float = 5.0
    multiplier: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._failures = 0

    @property
    def failures(self) -> int:
        return self._failures

    def reset(self) -> None:
        self._failures = 0

    def next_delay(self) -> float:
        """Delay before the next attempt; call once per failure."""
        bounded = min(
            self.cap_s, self.base_s * (self.multiplier ** self._failures)
        )
        self._failures += 1
        # Full jitter: uniform in (0, bounded] avoids thundering herds
        # while keeping the expected delay half the exponential curve.
        return bounded * (0.5 + 0.5 * self._rng.random())

"""The HTTP worker loop: pull leases, run trials, stream results back.

Trials run through the *existing* :func:`repro.campaign.worker.run_trial`
path — same registries, same per-trial seeding, same batch-engine
fallback — so a record produced by a fleet worker is bit-identical
(modulo volatile wall-clock/worker metadata) to the one the single-host
pool would have written for the same trial spec.

Two robustness mechanisms live here rather than in ``run_trial``:

* **Portable deadlines.**  The pool path enforces per-trial budgets
  with ``SIGALRM``, which is unix-only and cannot interrupt C-level
  loops.  The service path instead runs the trial in a child process
  and enforces the deadline from outside (`run_trial_with_deadline`):
  poll-join, then ``terminate()`` — works on any platform and kills
  genuinely wedged trials.  Between polls the worker heartbeats its
  lease so a slow trial is not mistaken for a dead worker.
* **Bounded backoff.**  Coordinator connection failures back off
  exponentially with *seeded* jitter (:class:`~.protocol.BackoffPolicy`)
  and give up after ``max_failures`` consecutive misses with
  :class:`CoordinatorUnreachable`.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from urllib import request as urlrequest

from ..spec import TrialSpec
from ..store import STATUS_FAILED, STATUS_OK
from ..worker import run_trial
from . import protocol


class CoordinatorUnreachable(Exception):
    """Raised after ``max_failures`` consecutive failed coordinator calls."""


def _mp_context():
    # fork shares test-registered attacks with trial children, matching
    # the pool executor; spawn still works (run_trial is module-level).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


def _deadline_child(payload: Dict[str, Any], conn) -> None:
    try:
        record = run_trial(payload)
    except BaseException as error:  # pragma: no cover - run_trial catches
        record = _failure_record(payload, f"worker child crashed: {error!r}", 0.0)
    try:
        conn.send(record)
    finally:
        conn.close()


def _failure_record(
    payload: Mapping[str, Any], error: str, wall_time_s: float
) -> Dict[str, Any]:
    """A ``run_trial``-shaped failure record built coordinator-side."""
    trial = TrialSpec.from_payload(payload)
    return {
        "key": trial.key(),
        "machine": trial.machine,
        "tp": trial.tp,
        "attack": trial.attack,
        "seed": trial.seed,
        "params": dict(trial.params),
        "instrumentation": trial.instrumentation,
        "engine": trial.engine,
        "derived_seed": trial.derived_seed(),
        "attempts": int(payload.get("attempt", 1)),
        "worker": {"pid": os.getpid(), "host": socket.gethostname()},
        "status": STATUS_FAILED,
        "result": None,
        "error": error,
        "wall_time_s": round(wall_time_s, 6),
    }


def run_trial_with_deadline(
    payload: Mapping[str, Any],
    heartbeat: Optional[Callable[[], None]] = None,
    clock: Callable[[], float] = time.monotonic,
    poll_s: float = 0.25,
    mp_context=None,
) -> Dict[str, Any]:
    """Run one trial with a portable wall-clock deadline.

    ``payload["timeout_s"] <= 0`` runs inline (no child process); a
    positive budget forks a child and enforces the deadline from the
    parent, calling ``heartbeat`` between join polls.
    """
    timeout_s = float(payload.get("timeout_s") or 0)
    if timeout_s <= 0:
        return run_trial(dict(payload))
    ctx = mp_context or _mp_context()
    # The child gets timeout_s=0: the deadline lives out here, so the
    # unix-only SIGALRM path in run_trial is never armed.
    child_payload = dict(payload)
    child_payload["timeout_s"] = 0
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_deadline_child, args=(child_payload, child_conn)
    )
    started = clock()
    process.start()
    child_conn.close()
    deadline = started + timeout_s
    while process.is_alive():
        remaining = deadline - clock()
        if remaining <= 0:
            break
        process.join(timeout=min(poll_s, remaining))
        if heartbeat is not None:
            heartbeat()
    record: Optional[Dict[str, Any]] = None
    if process.is_alive():
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - terminate() sufficed
            process.kill()
            process.join()
        record = _failure_record(
            payload,
            f"trial exceeded its {timeout_s}s deadline "
            f"(terminated by the portable watchdog)",
            clock() - started,
        )
    else:
        if parent_conn.poll(1.0):
            try:
                record = parent_conn.recv()
            except (EOFError, OSError):
                record = None
        if record is None:
            record = _failure_record(
                payload,
                f"worker child exited without a record "
                f"(exit code {process.exitcode})",
                clock() - started,
            )
    parent_conn.close()
    return record


@dataclass
class WorkerStats:
    """What one worker loop did, for logs and exit decisions."""

    leases: int = 0
    trials: int = 0
    succeeded: int = 0
    failed: int = 0
    retries: int = 0
    flushes: int = 0
    reconnects: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.leases} lease(s), {self.trials} trial(s) "
            f"({self.succeeded} ok, {self.failed} failed, "
            f"{self.retries} retried), {self.flushes} result flush(es), "
            f"{self.reconnects} reconnect(s)"
        )


class ServiceWorker:
    """One lease-pulling worker loop against a coordinator URL."""

    def __init__(
        self,
        coordinator_url: str,
        worker_id: str = "",
        engine: Optional[str] = None,
        max_retries: Optional[int] = None,
        flush_every: int = 1,
        max_failures: int = 8,
        http_timeout_s: float = 30.0,
        backoff: Optional[protocol.BackoffPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.url = coordinator_url.rstrip("/")
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.engine = engine
        self.max_retries = max_retries
        self.flush_every = max(1, int(flush_every))
        self.max_failures = max(1, int(max_failures))
        self.http_timeout_s = float(http_timeout_s)
        self.backoff = backoff or protocol.BackoffPolicy()
        self.clock = clock
        self.sleep = sleep
        self.log = log
        self.stats = WorkerStats()
        self._ctx = _mp_context()

    # -- HTTP --------------------------------------------------------------

    def _request(self, path: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        request = urlrequest.Request(
            self.url + path,
            data=protocol.encode(payload),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urlrequest.urlopen(request, timeout=self.http_timeout_s) as resp:
            return protocol.decode(resp.read())

    def _call(self, path: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Request with bounded-backoff retry on connection failures."""
        while True:
            try:
                response = self._request(path, payload)
            except (OSError, ValueError) as error:
                delay = self.backoff.next_delay()
                if self.backoff.failures >= self.max_failures:
                    raise CoordinatorUnreachable(
                        f"{self.url}{path} failed {self.backoff.failures} "
                        f"time(s); last error: {error!r}"
                    ) from error
                self.stats.reconnects += 1
                if self.log:
                    self.log(
                        f"[{self.worker_id}] coordinator unreachable "
                        f"({error!r}); retrying in {delay:.2f}s"
                    )
                self.sleep(delay)
                continue
            self.backoff.reset()
            return response

    # -- the loop ----------------------------------------------------------

    def run(self) -> WorkerStats:
        while True:
            response = self._call(
                protocol.LEASE_PATH, {"worker": self.worker_id}
            )
            grant = response.get("lease")
            if grant:
                self.stats.leases += 1
                if self._run_lease(grant):
                    # The final flush already answered "done": exit now
                    # rather than racing a coordinator shutdown.
                    if self.log:
                        self.log(
                            f"[{self.worker_id}] done: "
                            f"{self.stats.summary()}"
                        )
                    return self.stats
            elif response.get("done"):
                if self.log:
                    self.log(f"[{self.worker_id}] done: {self.stats.summary()}")
                return self.stats
            else:
                self.sleep(
                    float(response.get("retry_after_s")
                          or protocol.DEFAULT_RETRY_AFTER_S)
                )

    def _run_lease(self, grant: Mapping[str, Any]) -> bool:
        """Run a lease's trials; True if the grid drained on our flush."""
        shard = int(grant["shard"])
        generation = int(grant["generation"])
        ttl_s = float(grant.get("ttl_s", 60.0))
        retries = (
            self.max_retries
            if self.max_retries is not None
            else int(grant.get("max_retries", 1))
        )
        heartbeat = self._heartbeat_fn(shard, generation, ttl_s)
        buffer: List[Dict[str, Any]] = []
        done = False
        for payload in grant.get("trials", []):
            buffer.append(self._run_one(payload, retries, heartbeat))
            if len(buffer) >= self.flush_every:
                done = self._flush(shard, generation, buffer) or done
        return self._flush(shard, generation, buffer) or done

    def _run_one(
        self,
        payload: Mapping[str, Any],
        retries: int,
        heartbeat: Callable[[], None],
    ) -> Dict[str, Any]:
        executed = dict(payload)
        relabel = (
            self.engine is not None
            and executed.get("engine", "scalar") != self.engine
        )
        if relabel:
            # Execute on the preferred engine but keep the lease's trial
            # identity: batch-of-N is contract-tested bit-identical to
            # scalar, so only volatile metadata records the difference.
            executed["engine"] = self.engine
        attempt = 1
        while True:
            executed["attempt"] = attempt
            record = run_trial_with_deadline(
                executed,
                heartbeat=heartbeat,
                clock=self.clock,
                mp_context=self._ctx,
            )
            if record.get("status") == STATUS_OK or attempt > retries:
                break
            attempt += 1
            self.stats.retries += 1
        if relabel:
            record["key"] = payload["key"]
            record["engine"] = payload.get("engine", "scalar")
            meta = dict(record.get("worker") or {})
            meta["executed_engine"] = self.engine
            record["worker"] = meta
        self.stats.trials += 1
        if record.get("status") == STATUS_OK:
            self.stats.succeeded += 1
        else:
            self.stats.failed += 1
        return record

    def _heartbeat_fn(
        self, shard: int, generation: int, ttl_s: float
    ) -> Callable[[], None]:
        """Best-effort lease extension, rate-limited to ttl/3."""
        interval = max(0.05, ttl_s / 3.0)
        last = [self.clock()]

        def heartbeat() -> None:
            now = self.clock()
            if now - last[0] < interval:
                return
            last[0] = now
            try:
                self._request(protocol.HEARTBEAT_PATH, {
                    "worker": self.worker_id,
                    "shard": shard,
                    "generation": generation,
                })
            except (OSError, ValueError):
                pass  # the results flush will retry with backoff

        return heartbeat

    def _flush(
        self, shard: int, generation: int, buffer: List[Dict[str, Any]]
    ) -> bool:
        if not buffer:
            return False
        response = self._call(protocol.RESULTS_PATH, protocol.results_request(
            self.worker_id, shard, generation, buffer
        ))
        self.stats.flushes += 1
        buffer.clear()
        return bool(response.get("done"))

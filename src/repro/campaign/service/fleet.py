"""``campaign --distributed``: a coordinator plus N local worker processes.

The fleet is the one-command version of the service: bind the
coordinator socket, fork the workers (before the server thread starts,
so children inherit a quiet process), serve leases until the grid
drains, and survive churn — dead workers are respawned (bounded) and
expired leases re-issue automatically, so killing a worker mid-sweep
costs at most one lease TTL, never work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from ..progress import ProgressReporter
from ..spec import CampaignSpec, TrialSpec
from ..store import ResultStore
from .coordinator import Coordinator, CoordinatorServer
from .leases import LeaseTable, plan_payloads
from .protocol import BackoffPolicy
from .worker import CoordinatorUnreachable, ServiceWorker

#: Exit codes for worker processes (visible in FleetReport.notes).
_WORKER_OK = 0
_WORKER_UNREACHABLE = 3


@dataclass
class FleetReport:
    """What a distributed campaign run did (mirrors CampaignReport)."""

    total: int
    skipped: int = 0
    executed: int = 0
    succeeded: int = 0
    failed: int = 0
    leases_issued: int = 0
    leases_expired: int = 0
    duplicates: int = 0
    stale_accepted: int = 0
    respawns: int = 0
    workers: int = 0
    completed: bool = False
    wall_time_s: float = 0.0
    url: str = ""

    @property
    def all_ok(self) -> bool:
        return self.completed and self.failed == 0

    def summary(self) -> str:
        return (
            f"{self.total} trial(s): {self.executed} executed "
            f"({self.succeeded} ok, {self.failed} failed), "
            f"{self.skipped} resumed, {self.workers} worker(s) "
            f"(+{self.respawns} respawned), "
            f"{self.leases_issued} lease(s) issued "
            f"({self.leases_expired} expired and re-issued, "
            f"{self.duplicates} duplicate result(s) dropped), "
            f"{self.wall_time_s:.1f}s wall"
            + ("" if self.completed else " [INCOMPLETE]")
        )


def _fleet_worker_main(
    url: str,
    worker_id: str,
    backoff_seed: int,
    engine: Optional[str],
    flush_every: int,
) -> int:
    worker = ServiceWorker(
        url,
        worker_id=worker_id,
        engine=engine,
        flush_every=flush_every,
        backoff=BackoffPolicy(seed=backoff_seed),
    )
    try:
        worker.run()
    except CoordinatorUnreachable:
        return _WORKER_UNREACHABLE
    return _WORKER_OK


def run_distributed_campaign(
    campaign: Union[CampaignSpec, Sequence[TrialSpec]],
    store: Union[ResultStore, str],
    n_workers: int = 2,
    shard_size: int = 8,
    lease_ttl_s: float = 30.0,
    timeout_s: float = 0.0,
    max_retries: int = 1,
    resume: bool = True,
    engine: Optional[str] = None,
    flush_every: int = 1,
    quiet: bool = False,
    host: str = "127.0.0.1",
    port: int = 0,
    max_respawns: Optional[int] = None,
    stall_timeout_s: float = 0.0,
    clock: Callable[[], float] = time.monotonic,
) -> FleetReport:
    """Run a campaign grid through a local coordinator + worker fleet.

    Resume semantics are identical to the pool path: trials whose key
    already has a successful record in ``store`` are never leased, so a
    killed-and-restarted fleet converges on the same completed-key set
    a serial run produces.
    """
    from ..store import open_store
    from .worker import _mp_context

    if isinstance(store, str):
        store = open_store(store)
    trials = (
        campaign.trials()
        if isinstance(campaign, CampaignSpec)
        else list(campaign)
    )
    label = campaign.name if isinstance(campaign, CampaignSpec) else "campaign"
    n_workers = max(1, int(n_workers))
    if max_respawns is None:
        max_respawns = 2 * n_workers

    completed = store.completed_keys() if resume else set()
    todo = [trial for trial in trials if trial.key() not in completed]
    table = LeaseTable(
        plan_payloads(todo, timeout_s=timeout_s),
        shard_size=shard_size,
        lease_ttl_s=lease_ttl_s,
        max_retries=max_retries,
    )
    reporter = ProgressReporter(
        total=len(todo), label=f"{label}/fleet", enabled=not quiet
    )
    coordinator = Coordinator(table, store, campaign=label, reporter=reporter)
    server = CoordinatorServer(coordinator, host=host, port=port)
    server.bind()

    started = clock()
    report = FleetReport(
        total=len(trials), skipped=len(trials) - len(todo),
        workers=n_workers, url=server.url,
    )
    if not todo:
        report.completed = True
        report.wall_time_s = clock() - started
        server.close_unstarted()
        return report

    reporter.start(n_workers, report.skipped)
    ctx = _mp_context()

    def spawn(index: int):
        process = ctx.Process(
            target=_fleet_worker_main,
            args=(server.url, f"w{index}", index, engine, flush_every),
            daemon=True,
        )
        process.start()
        return process

    # Fork the initial fleet before the server thread exists: children
    # inherit a single-threaded process (no mid-lock asyncio state).
    processes: List = [spawn(i) for i in range(n_workers)]
    server.start()
    respawns = 0
    try:
        while not server.wait_done(timeout=0.2):
            if stall_timeout_s and clock() - started > stall_timeout_s:
                break
            alive = [p for p in processes if p.is_alive()]
            if not alive:
                if respawns >= max_respawns:
                    break  # fleet stalled; report INCOMPLETE
                respawns += 1
                processes.append(spawn(n_workers + respawns - 1))
    finally:
        # Workers exit on the coordinator's "done" answer; give them a
        # grace period, then terminate stragglers.
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        server.stop()
        reporter.finish()

    stats = table.stats
    report.executed = stats.accepted
    report.succeeded = stats.succeeded
    report.failed = stats.failed
    report.leases_issued = stats.leases_issued
    report.leases_expired = stats.leases_expired
    report.duplicates = stats.duplicates
    report.stale_accepted = stats.stale_accepted
    report.respawns = respawns
    report.completed = table.done
    report.wall_time_s = clock() - started
    return report

"""Distributed campaign service: lease coordinator + HTTP worker fleet.

The single-host pool (``campaign.executor``) tops out at one machine.
This package promotes the campaign engine to a *service*:

* :mod:`leases` — a deterministic, clock-injected lease table that
  shards a campaign grid into idempotent batches of trial payloads.
  Leases carry a deadline and a generation counter; an expired lease is
  re-issued with only its unresolved trials, so worker churn never
  loses work and no trial is double-counted.
* :mod:`coordinator` — an ``asyncio`` HTTP server over the lease table
  and a :class:`~repro.campaign.store.ResultStore`: ``POST /lease``,
  ``POST /heartbeat``, ``POST /results``, ``GET /status``.  The
  coordinator is the *only* store writer, so a sqlite store needs no
  cross-process locking.
* :mod:`worker` — a stdlib (``urllib``) worker loop that pulls leases,
  runs trials through the existing :func:`~repro.campaign.worker
  .run_trial` path (batch engine where the envelope allows, scalar
  fallback otherwise), enforces per-trial deadlines portably (child
  process, no ``SIGALRM``), and streams results back with bounded
  exponential backoff + seeded jitter.
* :mod:`fleet` — ``campaign --distributed``: coordinator plus N local
  worker processes, with dead workers respawned until the grid drains.
* :mod:`status` — the live ``/status`` payload: progress counters plus
  the streaming (machine × tp) capacity matrix.

Determinism note (the SC-2 story): every simulated quantity still
derives from ``CycleClock`` and the per-trial derived seed, exactly as
in the pool path — the same ``run_trial`` runs the trial, so records
are bit-identical modulo the volatile wall-clock/worker metadata.
Service-side *operational* timing (lease deadlines, heartbeats, retry
backoff) is injected as a clock callable so the lease logic itself is
deterministic under test; jitter comes from an explicitly seeded
``random.Random``.
"""

from .coordinator import CoordinatorServer
from .fleet import FleetReport, run_distributed_campaign
from .leases import LeaseTable, plan_payloads
from .protocol import BackoffPolicy
from .worker import CoordinatorUnreachable, ServiceWorker, run_trial_with_deadline

__all__ = [
    "BackoffPolicy",
    "CoordinatorServer",
    "CoordinatorUnreachable",
    "FleetReport",
    "LeaseTable",
    "ServiceWorker",
    "plan_payloads",
    "run_distributed_campaign",
    "run_trial_with_deadline",
]
